package isa

import (
	"encoding/binary"
	"fmt"
)

// Asm is an incremental assembler for the supported x86-64 subset. All
// register-register and register-memory operations are 64-bit (REX.W).
type Asm struct {
	buf []byte
}

// Bytes returns the assembled machine code.
func (a *Asm) Bytes() []byte { return a.buf }

// Len returns the current length in bytes.
func (a *Asm) Len() int { return len(a.buf) }

func (a *Asm) emit(b ...byte) { a.buf = append(a.buf, b...) }

func (a *Asm) emit32(v int32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	a.emit(b[:]...)
}

func (a *Asm) emit64(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	a.emit(b[:]...)
}

// rex builds a REX prefix byte. w selects 64-bit operands; r, x, b extend
// the ModRM.reg, SIB.index, and ModRM.rm/SIB.base fields.
func rex(w bool, r, x, b Reg) byte {
	v := byte(0x40)
	if w {
		v |= 8
	}
	if r >= R8 {
		v |= 4
	}
	if x >= R8 {
		v |= 2
	}
	if b >= R8 {
		v |= 1
	}
	return v
}

// modRM assembles the ModRM byte.
func modRM(mod, reg, rm byte) byte { return mod<<6 | (reg&7)<<3 | rm&7 }

// emitModRMReg emits ModRM for a register-direct rm operand.
func (a *Asm) emitModRMReg(reg, rm Reg) {
	a.emit(modRM(3, byte(reg), byte(rm)))
}

// emitModRMMem emits ModRM (+SIB, +disp) for a memory operand.
func (a *Asm) emitModRMMem(reg Reg, m Mem) {
	if m.RIPRel {
		a.emit(modRM(0, byte(reg), 5))
		a.emit32(m.Disp)
		return
	}
	if m.Index == RSP {
		panic("isa: rsp cannot be an index register")
	}
	scaleBits := map[int]byte{0: 0, 1: 0, 2: 1, 4: 2, 8: 3}
	ss, ok := scaleBits[m.Scale]
	if !ok {
		panic(fmt.Sprintf("isa: bad scale %d", m.Scale))
	}

	needSIB := m.Index != NoReg || m.Base == NoReg || m.Base == RSP || m.Base == R12

	// Choose mod / displacement size.
	var mod byte
	switch {
	case m.Base == NoReg:
		mod = 0 // absolute disp32 via SIB base=101
	case m.Disp == 0 && m.Base != RBP && m.Base != R13:
		mod = 0
	case m.Disp >= -128 && m.Disp <= 127:
		mod = 1
	default:
		mod = 2
	}

	if needSIB {
		a.emit(modRM(mod, byte(reg), 4))
		idx := byte(4) // none
		if m.Index != NoReg {
			idx = byte(m.Index)
		}
		base := byte(5)
		if m.Base != NoReg {
			base = byte(m.Base)
		}
		a.emit(ss<<6 | (idx&7)<<3 | base&7)
		if m.Base == NoReg {
			a.emit32(m.Disp)
			return
		}
	} else {
		a.emit(modRM(mod, byte(reg), byte(m.Base)))
	}
	switch mod {
	case 1:
		a.emit(byte(m.Disp))
	case 2:
		a.emit32(m.Disp)
	}
}

// memRegs returns the registers a memory operand references, for REX.
func memRegs(m Mem) (base, index Reg) {
	base, index = RAX, RAX
	if m.Base != NoReg {
		base = m.Base
	}
	if m.Index != NoReg {
		index = m.Index
	}
	return
}

// --- no-operand instructions ---

// Nop emits a one-byte NOP (0x90).
func (a *Asm) Nop() { a.emit(0x90) }

// Vmfunc emits VMFUNC (0F 01 D4).
func (a *Asm) Vmfunc() { a.emit(0x0f, 0x01, 0xd4) }

// Syscall emits SYSCALL (0F 05).
func (a *Asm) Syscall() { a.emit(0x0f, 0x05) }

// Ret emits RET (C3).
func (a *Asm) Ret() { a.emit(0xc3) }

// Int3 emits INT3 (CC).
func (a *Asm) Int3() { a.emit(0xcc) }

// Hlt emits HLT (F4).
func (a *Asm) Hlt() { a.emit(0xf4) }

// --- stack ---

// PushReg emits PUSH r64 (50+r).
func (a *Asm) PushReg(r Reg) {
	if r >= R8 {
		a.emit(rex(false, RAX, RAX, r))
	}
	a.emit(0x50 + byte(r)&7)
}

// PopReg emits POP r64 (58+r).
func (a *Asm) PopReg(r Reg) {
	if r >= R8 {
		a.emit(rex(false, RAX, RAX, r))
	}
	a.emit(0x58 + byte(r)&7)
}

// --- mov ---

// MovRR emits MOV dst, src (REX.W 89 /r with dst in rm).
func (a *Asm) MovRR(dst, src Reg) {
	a.emit(rex(true, src, RAX, dst), 0x89)
	a.emitModRMReg(src, dst)
}

// MovRM emits MOV dst, [m] (REX.W 8B /r).
func (a *Asm) MovRM(dst Reg, m Mem) {
	b, x := memRegs(m)
	a.emit(rex(true, dst, x, b), 0x8b)
	a.emitModRMMem(dst, m)
}

// MovMR emits MOV [m], src (REX.W 89 /r).
func (a *Asm) MovMR(m Mem, src Reg) {
	b, x := memRegs(m)
	a.emit(rex(true, src, x, b), 0x89)
	a.emitModRMMem(src, m)
}

// MovRI64 emits MOVABS dst, imm64 (REX.W B8+r io).
func (a *Asm) MovRI64(dst Reg, imm int64) {
	a.emit(rex(true, RAX, RAX, dst), 0xb8+byte(dst)&7)
	a.emit64(imm)
}

// MovRI32 emits MOV dst, imm32 sign-extended (REX.W C7 /0 id).
func (a *Asm) MovRI32(dst Reg, imm int32) {
	a.emit(rex(true, RAX, RAX, dst), 0xc7)
	a.emitModRMReg(0, dst)
	a.emit32(imm)
}

// --- ALU ---

// aluInfo maps ALU ops to (base opcode, /n extension for 81).
var aluInfo = map[Op]struct {
	base byte
	ext  byte
}{
	ADD: {0x00, 0},
	OR:  {0x08, 1},
	AND: {0x20, 4},
	SUB: {0x28, 5},
	XOR: {0x30, 6},
	CMP: {0x38, 7},
}

// AluRR emits <op> dst, src (REX.W base+1 /r with dst in rm).
func (a *Asm) AluRR(op Op, dst, src Reg) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: AluRR of non-ALU op " + op.String())
	}
	a.emit(rex(true, src, RAX, dst), info.base+1)
	a.emitModRMReg(src, dst)
}

// Alu32RR emits the 32-bit form <op> dst32, src32 (base+1 /r, no REX.W).
// The result zero-extends into the 64-bit register.
func (a *Asm) Alu32RR(op Op, dst, src Reg) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: Alu32RR of non-ALU op " + op.String())
	}
	if dst >= R8 || src >= R8 {
		a.emit(rex(false, src, RAX, dst))
	}
	a.emit(info.base + 1)
	a.emitModRMReg(src, dst)
}

// AluRM emits <op> dst, [m] (REX.W base+3 /r).
func (a *Asm) AluRM(op Op, dst Reg, m Mem) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: AluRM of non-ALU op " + op.String())
	}
	b, x := memRegs(m)
	a.emit(rex(true, dst, x, b), info.base+3)
	a.emitModRMMem(dst, m)
}

// AluMR emits <op> [m], src (REX.W base+1 /r).
func (a *Asm) AluMR(op Op, m Mem, src Reg) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: AluMR of non-ALU op " + op.String())
	}
	b, x := memRegs(m)
	a.emit(rex(true, src, x, b), info.base+1)
	a.emitModRMMem(src, m)
}

// AluRI emits <op> dst, imm32 (REX.W 81 /n id).
func (a *Asm) AluRI(op Op, dst Reg, imm int32) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: AluRI of non-ALU op " + op.String())
	}
	a.emit(rex(true, RAX, RAX, dst), 0x81)
	a.emitModRMReg(Reg(info.ext), dst)
	a.emit32(imm)
}

// AluRI8 emits <op> dst, imm8 sign-extended (REX.W 83 /n ib).
func (a *Asm) AluRI8(op Op, dst Reg, imm int8) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: AluRI8 of non-ALU op " + op.String())
	}
	a.emit(rex(true, RAX, RAX, dst), 0x83)
	a.emitModRMReg(Reg(info.ext), dst)
	a.emit(byte(imm))
}

// AluMI emits <op> [m], imm32 (REX.W 81 /n id).
func (a *Asm) AluMI(op Op, m Mem, imm int32) {
	info, ok := aluInfo[op]
	if !ok {
		panic("isa: AluMI of non-ALU op " + op.String())
	}
	b, x := memRegs(m)
	a.emit(rex(true, RAX, x, b), 0x81)
	a.emitModRMMem(Reg(info.ext), m)
	a.emit32(imm)
}

// TestRR emits TEST dst, src (REX.W 85 /r).
func (a *Asm) TestRR(dst, src Reg) {
	a.emit(rex(true, src, RAX, dst), 0x85)
	a.emitModRMReg(src, dst)
}

// --- imul ---

// Imul2 emits IMUL dst, src (REX.W 0F AF /r).
func (a *Asm) Imul2(dst, src Reg) {
	a.emit(rex(true, dst, RAX, src), 0x0f, 0xaf)
	a.emitModRMReg(dst, src)
}

// Imul2M emits IMUL dst, [m].
func (a *Asm) Imul2M(dst Reg, m Mem) {
	b, x := memRegs(m)
	a.emit(rex(true, dst, x, b), 0x0f, 0xaf)
	a.emitModRMMem(dst, m)
}

// Imul3 emits IMUL dst, src, imm32 (REX.W 69 /r id).
func (a *Asm) Imul3(dst, src Reg, imm int32) {
	a.emit(rex(true, dst, RAX, src), 0x69)
	a.emitModRMReg(dst, src)
	a.emit32(imm)
}

// Imul3M emits IMUL dst, [m], imm32.
func (a *Asm) Imul3M(dst Reg, m Mem, imm int32) {
	b, x := memRegs(m)
	a.emit(rex(true, dst, x, b), 0x69)
	a.emitModRMMem(dst, m)
	a.emit32(imm)
}

// --- lea ---

// Lea emits LEA dst, [m] (REX.W 8D /r).
func (a *Asm) Lea(dst Reg, m Mem) {
	b, x := memRegs(m)
	a.emit(rex(true, dst, x, b), 0x8d)
	a.emitModRMMem(dst, m)
}

// --- control flow ---

// JmpRel32 emits JMP rel32 (E9 cd). rel is relative to the end of this
// instruction.
func (a *Asm) JmpRel32(rel int32) {
	a.emit(0xe9)
	a.emit32(rel)
}

// JmpRel8 emits JMP rel8 (EB cb).
func (a *Asm) JmpRel8(rel int8) { a.emit(0xeb, byte(rel)) }

// CallRel32 emits CALL rel32 (E8 cd).
func (a *Asm) CallRel32(rel int32) {
	a.emit(0xe8)
	a.emit32(rel)
}

// Jcc emits Jcc rel32 (0F 8x cd).
func (a *Asm) Jcc(c Cond, rel int32) {
	a.emit(0x0f, 0x80+byte(c))
	a.emit32(rel)
}
