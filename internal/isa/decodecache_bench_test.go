package isa

import "testing"

// benchInterp builds an interpreter over the 1..100 sum loop, pinning
// superblocks off so these benchmarks keep measuring per-step dispatch.
func benchInterp(b *testing.B, cached bool) *Interp {
	b.Helper()
	prev := SetDecodeCache(cached)
	prevSB := SetSuperblock(false)
	b.Cleanup(func() { SetDecodeCache(prev); SetSuperblock(prevSB) })
	ip := NewInterp()
	ip.AddRegion(0x400000, loopProgram(100))
	return ip
}

func runLoop(b *testing.B, ip *Interp) {
	for i := 0; i < b.N; i++ {
		ip.RIP = 0x400000
		ip.Halted = false
		ip.Steps = 0
		if err := ip.Run(10000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepDecodeCached measures Interp.Step throughput with the
// decoded-instruction cache serving repeat RIPs.
func BenchmarkStepDecodeCached(b *testing.B) {
	runLoop(b, benchInterp(b, true))
}

// BenchmarkStepDecodeUncached is the same loop with every instruction
// re-decoded from raw bytes.
func BenchmarkStepDecodeUncached(b *testing.B) {
	runLoop(b, benchInterp(b, false))
}
