package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// decodeCacheOn gates the decoded-instruction cache in interpreters
// constructed afterwards. It exists as an escape hatch (skybench
// -hostcache=off) and for on/off equivalence tests.
var decodeCacheOn = true

// SetDecodeCache enables or disables the decoded-instruction cache for
// interpreters constructed afterwards, returning the previous setting.
func SetDecodeCache(on bool) bool {
	prev := decodeCacheOn
	decodeCacheOn = on
	return prev
}

// superblockOn gates superblock (direct-threaded) execution in interpreters
// constructed afterwards (skybench -superblock on|off). Architectural
// results are identical either way; only host speed differs.
var superblockOn = true

// SetSuperblock enables or disables superblock execution for interpreters
// constructed afterwards, returning the previous setting.
func SetSuperblock(on bool) bool {
	prev := superblockOn
	superblockOn = on
	return prev
}

// Region is a span of interpreter-visible memory (code or data).
type Region struct {
	Base uint64
	Data []byte
}

// Interp is a small x86-64 interpreter over the supported subset. It exists
// to prove that the VMFUNC rewriter's output is functionally equivalent to
// its input: tests run both versions from identical initial states and
// compare final register, flag, and memory state.
type Interp struct {
	Regs [16]uint64
	RIP  uint64

	// Arithmetic flags.
	ZF, SF, CF, OF bool

	regions []Region

	// VMFuncCount counts executed VMFUNC instructions — the quantity the
	// rewriter must drive to zero for untrusted code.
	VMFuncCount int
	// SyscallCount counts executed SYSCALL instructions.
	SyscallCount int
	// Halted is set by HLT.
	Halted bool
	// Steps counts executed instructions.
	Steps int

	// Decoded-instruction cache (host-side; execution semantics are
	// unaffected). Keyed by RIP; every hit is validated by comparing the
	// cached instruction's Raw bytes (a copy made at decode time) against
	// the current region bytes, so an in-place code write — including a
	// rewrite pass mutating a region slice it retained — transparently
	// forces a re-decode. AddRegion and InvalidateCode also drop entries.
	decCache            map[uint64]Inst
	decOn               bool
	DecodeHits          uint64 // host-side diagnostics only
	DecodeMisses        uint64
	DecodeInvalidations uint64

	// Superblock (direct-threaded) execution state: straight-line decoded
	// runs fused into blocks dispatched as one host call (superblock.go).
	// sbCache is keyed by block entry RIP; every dispatch revalidates the
	// block's bytes against the live region, and a store from inside the
	// block over its own remaining bytes bails back to Step().
	sbCache map[uint64]*superblock
	sbOn    bool
	// storeSeq/lastStore track the most recent data store so block dispatch
	// can detect self-modifying writes over not-yet-executed block bytes.
	storeSeq  uint64
	lastStore uint64
	SBStats   SBStats // host-side diagnostics only
}

// NewInterp returns an empty interpreter.
func NewInterp() *Interp { return &Interp{decOn: decodeCacheOn, sbOn: superblockOn} }

// AddRegion maps data at base. Regions must not overlap.
func (ip *Interp) AddRegion(base uint64, data []byte) {
	for _, r := range ip.regions {
		if base < r.Base+uint64(len(r.Data)) && r.Base < base+uint64(len(data)) {
			panic(fmt.Sprintf("isa: region %#x overlaps existing region %#x", base, r.Base))
		}
	}
	ip.regions = append(ip.regions, Region{Base: base, Data: data})
	ip.InvalidateCode()
}

// InvalidateCode drops every cached decoded instruction and superblock.
// Callers that mutate code bytes in place do not need to call this — hit
// validation catches byte changes — but rewriters may call it for
// explicitness.
func (ip *Interp) InvalidateCode() {
	if len(ip.decCache) > 0 {
		ip.DecodeInvalidations++
		clear(ip.decCache)
	}
	if len(ip.sbCache) > 0 {
		ip.SBStats.Invalidations++
		clear(ip.sbCache)
	}
}

// decode returns the decoded instruction at the current RIP, serving it
// from the decode cache when the underlying bytes still match.
func (ip *Interp) decode(code []byte) (Inst, error) {
	if !ip.decOn {
		return Decode(code)
	}
	if in, ok := ip.decCache[ip.RIP]; ok {
		if n := len(in.Raw); len(code) >= n && bytes.Equal(in.Raw, code[:n]) {
			ip.DecodeHits++
			return in, nil
		}
		// Stale bytes under a cached entry: fall through and re-decode.
	}
	in, err := Decode(code)
	if err != nil {
		return in, err
	}
	ip.DecodeMisses++
	if ip.decCache == nil {
		ip.decCache = make(map[uint64]Inst)
	}
	ip.decCache[ip.RIP] = in
	return in, nil
}

func (ip *Interp) region(addr uint64, n int) ([]byte, error) {
	for _, r := range ip.regions {
		if addr >= r.Base && addr+uint64(n) <= r.Base+uint64(len(r.Data)) {
			off := addr - r.Base
			return r.Data[off : off+uint64(n)], nil
		}
	}
	return nil, fmt.Errorf("isa: interpreter fault: access of %d bytes at %#x", n, addr)
}

func (ip *Interp) read64(addr uint64) (uint64, error) {
	b, err := ip.region(addr, 8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (ip *Interp) write64(addr uint64, v uint64) error {
	b, err := ip.region(addr, 8)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b, v)
	ip.storeSeq++
	ip.lastStore = addr
	return nil
}

// ea computes the effective address of a memory operand. end is the address
// of the next instruction (for RIP-relative operands).
func (ip *Interp) ea(m Mem, end uint64) uint64 {
	if m.RIPRel {
		return end + uint64(int64(m.Disp))
	}
	var a uint64
	if m.Base != NoReg {
		a = ip.Regs[m.Base]
	}
	if m.Index != NoReg {
		a += ip.Regs[m.Index] * uint64(m.Scale)
	}
	return a + uint64(int64(m.Disp))
}

// srcValue resolves the source operand of a two-operand instruction.
func (ip *Interp) srcValue(in Inst, end uint64) (uint64, error) {
	switch {
	case in.HasImm:
		return uint64(in.Imm), nil
	case in.HasMem && !in.MemIsDst:
		return ip.read64(ip.ea(in.M, end))
	default:
		return ip.Regs[in.Src], nil
	}
}

// dstValue resolves the current destination value.
func (ip *Interp) dstValue(in Inst, end uint64) (uint64, error) {
	if in.HasMem && in.MemIsDst {
		return ip.read64(ip.ea(in.M, end))
	}
	return ip.Regs[in.Dst], nil
}

// setDst writes the destination operand.
func (ip *Interp) setDst(in Inst, end uint64, v uint64) error {
	if in.HasMem && in.MemIsDst {
		return ip.write64(ip.ea(in.M, end), v)
	}
	ip.Regs[in.Dst] = v
	return nil
}

func (ip *Interp) setZS(res uint64) {
	ip.ZF = res == 0
	ip.SF = res>>63 != 0
}

// fetchWindow returns the up-to-15-byte fetch window at the current RIP,
// clamped to the containing region.
func (ip *Interp) fetchWindow() ([]byte, error) {
	code, err := ip.region(ip.RIP, 1)
	if err != nil {
		return nil, err
	}
	// Extend the fetch window up to 15 bytes within the region.
	if len(code) > 15 {
		code = code[:15]
	} else {
		for _, r := range ip.regions {
			if ip.RIP >= r.Base && ip.RIP < r.Base+uint64(len(r.Data)) {
				off := ip.RIP - r.Base
				code = r.Data[off:]
				if len(code) > 15 {
					code = code[:15]
				}
			}
		}
	}
	return code, nil
}

// Step fetches, decodes, and executes one instruction.
func (ip *Interp) Step() error {
	code, err := ip.fetchWindow()
	if err != nil {
		return err
	}
	in, err := ip.decode(code)
	if err != nil {
		return fmt.Errorf("isa: at rip %#x: %w", ip.RIP, err)
	}
	end := ip.RIP + uint64(in.Len)
	ip.Steps++
	return ip.execInst(&in, end)
}

// alu64 applies a 64-bit ALU operation to (a, b), setting CF/OF/ZF/SF, and
// returns the result. It is the single source of truth for ALU flag
// semantics, shared by execInst and the direct-threaded block handlers.
func (ip *Interp) alu64(op Op, a, b uint64) uint64 {
	var res uint64
	switch op {
	case ADD:
		res = a + b
		ip.CF = res < a
		ip.OF = (a^res)&(b^res)>>63 != 0
	case SUB, CMP:
		res = a - b
		ip.CF = a < b
		ip.OF = (a^b)&(a^res)>>63 != 0
	case AND, TEST:
		res = a & b
		ip.CF, ip.OF = false, false
	case OR:
		res = a | b
		ip.CF, ip.OF = false, false
	case XOR:
		res = a ^ b
		ip.CF, ip.OF = false, false
	}
	ip.setZS(res)
	return res
}

// execInst executes one decoded instruction, updating RIP. end is the
// address of the next sequential instruction. Step and superblock dispatch
// share this so per-instruction semantics are identical in both modes.
func (ip *Interp) execInst(in *Inst, end uint64) error {
	switch in.Op {
	case NOP:
	case HLT:
		ip.Halted = true
	case INT3:
		return fmt.Errorf("isa: int3 trap at rip %#x", ip.RIP)
	case VMFUNC:
		ip.VMFuncCount++
	case SYSCALL:
		ip.SyscallCount++
	case PUSH:
		ip.Regs[RSP] -= 8
		if err := ip.write64(ip.Regs[RSP], ip.Regs[in.Dst]); err != nil {
			return err
		}
	case POP:
		v, err := ip.read64(ip.Regs[RSP])
		if err != nil {
			return err
		}
		ip.Regs[RSP] += 8
		ip.Regs[in.Dst] = v
	case MOV, MOVI:
		v, err := ip.srcValue(*in, end)
		if err != nil {
			return err
		}
		if err := ip.setDst(*in, end, v); err != nil {
			return err
		}
	case LEA:
		ip.Regs[in.Dst] = ip.ea(in.M, end)
	case ADD, SUB, AND, OR, XOR, CMP, TEST:
		a, err := ip.dstValue(*in, end)
		if err != nil {
			return err
		}
		b, err := ip.srcValue(*in, end)
		if err != nil {
			return err
		}
		if in.Bits32 {
			a &= 0xffffffff
			b &= 0xffffffff
		}
		res := ip.alu64(in.Op, a, b)
		if in.Bits32 {
			// 32-bit results zero-extend; flags derive from the 32-bit value.
			res &= 0xffffffff
			switch in.Op {
			case ADD:
				ip.CF = res < a
				ip.OF = (a^res)&(b^res)>>31 != 0
			case SUB, CMP:
				ip.CF = a < b
				ip.OF = (a^b)&(a^res)>>31 != 0
			}
			ip.ZF = res == 0
			ip.SF = res>>31 != 0
			if in.Op != CMP && in.Op != TEST {
				if err := ip.setDst(*in, end, res); err != nil {
					return err
				}
			}
			ip.RIP = end
			return nil
		}
		if in.Op != CMP && in.Op != TEST {
			if err := ip.setDst(*in, end, res); err != nil {
				return err
			}
		}
	case IMUL2, IMUL3:
		var a, b uint64
		if in.Op == IMUL3 {
			b = uint64(in.Imm)
			if in.HasMem {
				v, err := ip.read64(ip.ea(in.M, end))
				if err != nil {
					return err
				}
				a = v
			} else {
				a = ip.Regs[in.Src]
			}
		} else {
			a = ip.Regs[in.Dst]
			if in.HasMem {
				v, err := ip.read64(ip.ea(in.M, end))
				if err != nil {
					return err
				}
				b = v
			} else {
				b = ip.Regs[in.Src]
			}
		}
		res := a * b
		ip.Regs[in.Dst] = res
		// SF/ZF are architecturally undefined after IMUL; the interpreter
		// defines them deterministically from the result so equivalence
		// comparisons are stable.
		ip.setZS(res)
		ip.CF, ip.OF = false, false
	case JMP:
		ip.RIP = end + uint64(int64(in.Rel))
		return nil
	case CALL:
		ip.Regs[RSP] -= 8
		if err := ip.write64(ip.Regs[RSP], end); err != nil {
			return err
		}
		ip.RIP = end + uint64(int64(in.Rel))
		return nil
	case RET:
		v, err := ip.read64(ip.Regs[RSP])
		if err != nil {
			return err
		}
		ip.Regs[RSP] += 8
		ip.RIP = v
		return nil
	case JCC:
		taken, err := ip.cond(in.Cond)
		if err != nil {
			return err
		}
		if taken {
			ip.RIP = end + uint64(int64(in.Rel))
			return nil
		}
	default:
		return fmt.Errorf("isa: unimplemented op %v at rip %#x", in.Op, ip.RIP)
	}
	ip.RIP = end
	return nil
}

func (ip *Interp) cond(c Cond) (bool, error) {
	switch c {
	case CondO:
		return ip.OF, nil
	case CondNO:
		return !ip.OF, nil
	case CondB:
		return ip.CF, nil
	case CondAE:
		return !ip.CF, nil
	case CondE:
		return ip.ZF, nil
	case CondNE:
		return !ip.ZF, nil
	case CondBE:
		return ip.CF || ip.ZF, nil
	case CondA:
		return !ip.CF && !ip.ZF, nil
	case CondS:
		return ip.SF, nil
	case CondNS:
		return !ip.SF, nil
	case CondL:
		return ip.SF != ip.OF, nil
	case CondGE:
		return ip.SF == ip.OF, nil
	case CondLE:
		return ip.ZF || ip.SF != ip.OF, nil
	case CondG:
		return !ip.ZF && ip.SF == ip.OF, nil
	default:
		return false, fmt.Errorf("isa: unsupported condition %#x (parity)", int(c))
	}
}

// Run executes until HLT, an error, or maxSteps instructions. With
// superblocks enabled, straight-line runs dispatch as fused blocks; any
// condition a block cannot handle falls back to Step() with identical
// architectural outcomes (including the exact step count at which the
// maxSteps limit trips).
func (ip *Interp) Run(maxSteps int) error {
	for !ip.Halted {
		if ip.Steps >= maxSteps {
			return fmt.Errorf("isa: exceeded %d steps at rip %#x", maxSteps, ip.RIP)
		}
		if ip.sbOn {
			if sb := ip.lookupBlock(); sb != nil {
				if err := ip.execBlock(sb, maxSteps); err != nil {
					return err
				}
				continue
			}
		}
		if err := ip.Step(); err != nil {
			return err
		}
	}
	return nil
}
