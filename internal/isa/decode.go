package isa

import (
	"encoding/binary"
	"fmt"
)

// DecodeError reports an undecodable byte sequence.
type DecodeError struct {
	Off  int
	Byte byte
	Msg  string
}

// Error implements the error interface.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("isa: cannot decode at +%d (byte %#02x): %s", e.Off, e.Byte, e.Msg)
}

type decoder struct {
	b   []byte
	off int

	rexW, rexR, rexX, rexB bool
	hasREX                 bool

	inst Inst
}

func (d *decoder) err(msg string) error {
	b := byte(0)
	if d.off < len(d.b) {
		b = d.b[d.off]
	}
	return &DecodeError{Off: d.off, Byte: b, Msg: msg}
}

func (d *decoder) byteAt(i int) (byte, error) {
	if i >= len(d.b) {
		return 0, &DecodeError{Off: i, Msg: "truncated instruction"}
	}
	return d.b[i], nil
}

func (d *decoder) next() (byte, error) {
	v, err := d.byteAt(d.off)
	if err == nil {
		d.off++
	}
	return v, err
}

func (d *decoder) imm32() (int32, error) {
	if d.off+4 > len(d.b) {
		return 0, &DecodeError{Off: d.off, Msg: "truncated imm32"}
	}
	v := int32(binary.LittleEndian.Uint32(d.b[d.off:]))
	d.off += 4
	return v, nil
}

func (d *decoder) imm64() (int64, error) {
	if d.off+8 > len(d.b) {
		return 0, &DecodeError{Off: d.off, Msg: "truncated imm64"}
	}
	v := int64(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

// extReg applies a REX extension bit to a 3-bit register field.
func extReg(low byte, ext bool) Reg {
	r := Reg(low & 7)
	if ext {
		r += 8
	}
	return r
}

// parseModRM decodes ModRM (+SIB, +disp), recording field offsets. It
// returns the reg field (extended by REX.R) and either a register rm or a
// memory operand.
func (d *decoder) parseModRM() (reg Reg, rm Reg, m Mem, isMem bool, err error) {
	d.inst.ModRMOff = d.off
	mb, err := d.next()
	if err != nil {
		return 0, 0, Mem{}, false, err
	}
	mod := mb >> 6
	reg = extReg(mb>>3, d.rexR)
	rmLow := mb & 7

	if mod == 3 {
		return reg, extReg(rmLow, d.rexB), Mem{}, false, nil
	}

	m = Mem{Base: NoReg, Index: NoReg, Scale: 1}
	switch {
	case rmLow == 4: // SIB
		d.inst.SIBOff = d.off
		sib, e := d.next()
		if e != nil {
			return 0, 0, Mem{}, false, e
		}
		ss := sib >> 6
		idx := (sib >> 3) & 7
		base := sib & 7
		if !(idx == 4 && !d.rexX) { // index=100 with no REX.X means "none"
			m.Index = extReg(idx, d.rexX)
			m.Scale = 1 << ss
		}
		if base == 5 && mod == 0 {
			// No base, disp32 follows.
			d.inst.DispOff, d.inst.DispLen = d.off, 4
			disp, e := d.imm32()
			if e != nil {
				return 0, 0, Mem{}, false, e
			}
			m.Disp = disp
			return reg, 0, m, true, nil
		}
		m.Base = extReg(base, d.rexB)
	case rmLow == 5 && mod == 0: // RIP-relative
		m.RIPRel = true
		d.inst.DispOff, d.inst.DispLen = d.off, 4
		disp, e := d.imm32()
		if e != nil {
			return 0, 0, Mem{}, false, e
		}
		m.Disp = disp
		return reg, 0, m, true, nil
	default:
		m.Base = extReg(rmLow, d.rexB)
	}

	switch mod {
	case 1:
		d.inst.DispOff, d.inst.DispLen = d.off, 1
		b, e := d.next()
		if e != nil {
			return 0, 0, Mem{}, false, e
		}
		m.Disp = int32(int8(b))
	case 2:
		d.inst.DispOff, d.inst.DispLen = d.off, 4
		disp, e := d.imm32()
		if e != nil {
			return 0, 0, Mem{}, false, e
		}
		m.Disp = disp
	}
	return reg, 0, m, true, nil
}

// setRM stores a decoded reg/rm pair on the instruction: regIsDst selects
// whether the ModRM reg field is the destination.
func (d *decoder) setRM(regIsDst bool, reg, rm Reg, m Mem, isMem bool) {
	if isMem {
		d.inst.HasMem = true
		d.inst.M = m
		d.inst.MemIsDst = !regIsDst
		if regIsDst {
			d.inst.Dst = reg
		} else {
			d.inst.Src = reg
		}
		return
	}
	if regIsDst {
		d.inst.Dst, d.inst.Src = reg, rm
	} else {
		d.inst.Dst, d.inst.Src = rm, reg
	}
}

// aluByExt maps the 81/83 /n extension to the ALU op.
var aluByExt = map[byte]Op{0: ADD, 1: OR, 4: AND, 5: SUB, 6: XOR, 7: CMP}

// aluByBase maps base opcodes to ALU ops.
var aluByBase = map[byte]Op{0x00: ADD, 0x08: OR, 0x20: AND, 0x28: SUB, 0x30: XOR, 0x38: CMP}

// Decode decodes the instruction at the start of b. Unrecognized encodings
// return a *DecodeError. The returned Inst records the offsets of every
// encoding field, which the VMFUNC rewriter relies on.
func Decode(b []byte) (Inst, error) {
	d := &decoder{b: b}
	d.inst = Inst{ModRMOff: -1, SIBOff: -1, DispOff: -1, ImmOff: -1, Dst: NoReg, Src: NoReg}

	op, err := d.next()
	if err != nil {
		return Inst{}, err
	}
	if op >= 0x40 && op <= 0x4f {
		d.hasREX = true
		d.rexW = op&8 != 0
		d.rexR = op&4 != 0
		d.rexX = op&2 != 0
		d.rexB = op&1 != 0
		op, err = d.next()
		if err != nil {
			return Inst{}, err
		}
	}
	d.inst.OpcodeOff = d.off - 1
	d.inst.OpcodeLen = 1

	finish := func(o Op) (Inst, error) {
		d.inst.Op = o
		d.inst.Len = d.off
		d.inst.Raw = append([]byte(nil), d.b[:d.off]...)
		return d.inst, nil
	}

	switch {
	case op == 0x90:
		return finish(NOP)
	case op == 0xc3:
		return finish(RET)
	case op == 0xcc:
		return finish(INT3)
	case op == 0xf4:
		return finish(HLT)

	case op >= 0x50 && op <= 0x57:
		d.inst.Dst = extReg(op-0x50, d.rexB)
		return finish(PUSH)
	case op >= 0x58 && op <= 0x5f:
		d.inst.Dst = extReg(op-0x58, d.rexB)
		return finish(POP)

	case op == 0x0f:
		return d.decode0F()

	case op == 0x89 || op == 0x8b:
		if !d.rexW {
			return Inst{}, d.err("32-bit mov not supported")
		}
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		d.setRM(op == 0x8b, reg, rm, m, isMem)
		return finish(MOV)

	case op >= 0xb8 && op <= 0xbf:
		if !d.rexW {
			return Inst{}, d.err("mov r32, imm32 not supported")
		}
		d.inst.Dst = extReg(op-0xb8, d.rexB)
		d.inst.ImmOff, d.inst.ImmLen = d.off, 8
		imm, e := d.imm64()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Imm, d.inst.HasImm = imm, true
		return finish(MOVI)

	case op == 0xc7:
		if !d.rexW {
			return Inst{}, d.err("mov r/m32, imm32 not supported")
		}
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		if reg&7 != 0 {
			return Inst{}, d.err("C7 with /n != 0")
		}
		if isMem {
			d.inst.HasMem, d.inst.M, d.inst.MemIsDst = true, m, true
			d.inst.Dst = NoReg
		} else {
			d.inst.Dst = rm
		}
		d.inst.ImmOff, d.inst.ImmLen = d.off, 4
		imm, e := d.imm32()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Imm, d.inst.HasImm = int64(imm), true
		return finish(MOVI)

	case op == 0x81 || op == 0x83:
		if !d.rexW {
			return Inst{}, d.err("32-bit ALU imm not supported")
		}
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		alu, ok := aluByExt[byte(reg)&7]
		if !ok {
			return Inst{}, d.err("unsupported 81/83 extension")
		}
		if isMem {
			d.inst.HasMem, d.inst.M, d.inst.MemIsDst = true, m, true
			d.inst.Dst = NoReg
		} else {
			d.inst.Dst = rm
		}
		if op == 0x81 {
			d.inst.ImmOff, d.inst.ImmLen = d.off, 4
			imm, e := d.imm32()
			if e != nil {
				return Inst{}, e
			}
			d.inst.Imm = int64(imm)
		} else {
			d.inst.ImmOff, d.inst.ImmLen = d.off, 1
			bb, e := d.next()
			if e != nil {
				return Inst{}, e
			}
			d.inst.Imm = int64(int8(bb))
		}
		d.inst.HasImm = true
		return finish(alu)

	case op == 0x85:
		if !d.rexW {
			return Inst{}, d.err("32-bit test not supported")
		}
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		d.setRM(false, reg, rm, m, isMem)
		return finish(TEST)

	case op == 0x8d:
		if !d.rexW {
			return Inst{}, d.err("32-bit lea not supported")
		}
		reg, _, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		if !isMem {
			return Inst{}, d.err("lea with register operand")
		}
		d.inst.Dst = reg
		d.inst.M, d.inst.HasMem = m, true
		return finish(LEA)

	case op == 0x69 || op == 0x6b:
		if !d.rexW {
			return Inst{}, d.err("32-bit imul not supported")
		}
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Dst = reg
		if isMem {
			d.inst.M, d.inst.HasMem = m, true
		} else {
			d.inst.Src = rm
		}
		if op == 0x69 {
			d.inst.ImmOff, d.inst.ImmLen = d.off, 4
			imm, e := d.imm32()
			if e != nil {
				return Inst{}, e
			}
			d.inst.Imm = int64(imm)
		} else {
			d.inst.ImmOff, d.inst.ImmLen = d.off, 1
			bb, e := d.next()
			if e != nil {
				return Inst{}, e
			}
			d.inst.Imm = int64(int8(bb))
		}
		d.inst.HasImm = true
		return finish(IMUL3)

	case op == 0xe9:
		d.inst.ImmOff, d.inst.ImmLen = d.off, 4
		rel, e := d.imm32()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Rel = rel
		return finish(JMP)
	case op == 0xeb:
		d.inst.ImmOff, d.inst.ImmLen = d.off, 1
		bb, e := d.next()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Rel = int32(int8(bb))
		return finish(JMP)
	case op == 0xe8:
		d.inst.ImmOff, d.inst.ImmLen = d.off, 4
		rel, e := d.imm32()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Rel = rel
		return finish(CALL)
	}

	// Register/memory ALU forms: base+1 (rm, r) and base+3 (r, rm).
	if alu, ok := aluByBase[op&^0x03]; ok && (op&0x03 == 0x01 || op&0x03 == 0x03) {
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		if !d.rexW {
			// 32-bit operand size: support the register-direct form only.
			if isMem {
				return Inst{}, d.err("32-bit ALU with memory operand not supported")
			}
			d.inst.Bits32 = true
		}
		d.setRM(op&0x03 == 0x03, reg, rm, m, isMem)
		return finish(alu)
	}

	return Inst{}, d.err("unknown opcode")
}

// decode0F handles two-byte (0F xx) opcodes.
func (d *decoder) decode0F() (Inst, error) {
	op2, err := d.next()
	if err != nil {
		return Inst{}, err
	}
	d.inst.OpcodeLen = 2

	finish := func(o Op) (Inst, error) {
		d.inst.Op = o
		d.inst.Len = d.off
		d.inst.Raw = append([]byte(nil), d.b[:d.off]...)
		return d.inst, nil
	}

	switch {
	case op2 == 0x01:
		b3, e := d.next()
		if e != nil {
			return Inst{}, e
		}
		if b3 != 0xd4 {
			return Inst{}, d.err("0F 01 group: only VMFUNC supported")
		}
		d.inst.OpcodeLen = 3
		return finish(VMFUNC)
	case op2 == 0x05:
		return finish(SYSCALL)
	case op2 == 0x1f:
		// Multi-byte NOP: 0F 1F /0.
		_, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		_ = rm
		_ = m
		_ = isMem
		return finish(NOP)
	case op2 == 0xaf:
		if !d.rexW {
			return Inst{}, d.err("32-bit imul not supported")
		}
		reg, rm, m, isMem, e := d.parseModRM()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Dst = reg
		if isMem {
			d.inst.M, d.inst.HasMem = m, true
		} else {
			d.inst.Src = rm
		}
		return finish(IMUL2)
	case op2 >= 0x80 && op2 <= 0x8f:
		d.inst.Cond = Cond(op2 - 0x80)
		d.inst.ImmOff, d.inst.ImmLen = d.off, 4
		rel, e := d.imm32()
		if e != nil {
			return Inst{}, e
		}
		d.inst.Rel = rel
		return finish(JCC)
	}
	return Inst{}, d.err("unknown 0F opcode")
}

// DecodeAll linearly decodes an entire byte stream, returning the decoded
// instructions. It fails if any byte sequence is undecodable — code pages
// handed to the rewriter must consist entirely of supported instructions.
func DecodeAll(b []byte) ([]Inst, error) {
	var out []Inst
	off := 0
	for off < len(b) {
		in, err := Decode(b[off:])
		if err != nil {
			if de, ok := err.(*DecodeError); ok {
				de.Off += off
			}
			return out, err
		}
		out = append(out, in)
		off += in.Len
	}
	return out, nil
}
