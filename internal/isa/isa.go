// Package isa implements a faithful subset of the x86-64 instruction set:
// variable-length encoding (legacy/REX prefixes, one- and two-byte opcodes,
// ModRM, SIB, displacement, immediate), a linear decoder, an assembler, and
// a small interpreter.
//
// SkyBridge's defense against the VMFUNC-faking attack (paper §5) scans and
// rewrites real instruction encodings, exploiting exactly the places the
// three bytes 0F 01 D4 can hide inside x86's variable-length format
// (Table 3: opcode, ModRM, SIB, displacement, immediate). Reproducing that
// defense therefore requires a real encoder/decoder, not an abstraction;
// the interpreter exists so tests can *execute* original and rewritten code
// and check functional equivalence rather than trusting the rewriter.
package isa

import "fmt"

// Reg is an x86-64 general-purpose register in hardware encoding order.
type Reg int

// General-purpose registers (hardware encoding 0..15).
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// NoReg marks an absent base/index register.
	NoReg Reg = -1
)

var regNames = [...]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
}

// String implements fmt.Stringer.
func (r Reg) String() string {
	if r >= 0 && int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("reg(%d)", int(r))
}

// Op identifies an operation in the supported subset.
type Op int

// Supported operations.
const (
	NOP Op = iota
	VMFUNC
	SYSCALL
	RET
	PUSH // push r64
	POP  // pop r64
	MOV  // mov r64, r/m64 or r/m64, r64
	MOVI // mov r64, imm64 (B8+r) or r/m64, imm32 (C7 /0)
	ADD
	SUB
	AND
	OR
	XOR
	CMP
	TEST  // test r/m64, r64
	IMUL2 // imul r64, r/m64
	IMUL3 // imul r64, r/m64, imm
	LEA
	JMP  // rel8/rel32
	CALL // rel32
	JCC  // 0F 8x rel32
	INT3
	HLT
)

var opNames = map[Op]string{
	NOP: "nop", VMFUNC: "vmfunc", SYSCALL: "syscall", RET: "ret",
	PUSH: "push", POP: "pop", MOV: "mov", MOVI: "mov", ADD: "add",
	SUB: "sub", AND: "and", OR: "or", XOR: "xor", CMP: "cmp",
	TEST: "test", IMUL2: "imul", IMUL3: "imul", LEA: "lea",
	JMP: "jmp", CALL: "call", JCC: "jcc", INT3: "int3", HLT: "hlt",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Cond is a condition code for Jcc (the low nibble of the 0F 8x opcode).
type Cond int

// Condition codes.
const (
	CondO  Cond = 0x0
	CondNO Cond = 0x1
	CondB  Cond = 0x2
	CondAE Cond = 0x3
	CondE  Cond = 0x4
	CondNE Cond = 0x5
	CondBE Cond = 0x6
	CondA  Cond = 0x7
	CondS  Cond = 0x8
	CondNS Cond = 0x9
	CondP  Cond = 0xa
	CondNP Cond = 0xb
	CondL  Cond = 0xc
	CondGE Cond = 0xd
	CondLE Cond = 0xe
	CondG  Cond = 0xf
)

// Mem is a memory operand: [Base + Index*Scale + Disp], or RIP-relative
// when RIPRel is set (Base/Index ignored).
type Mem struct {
	Base   Reg // NoReg for absolute disp32 (SIB with no base)
	Index  Reg // NoReg for none; RSP cannot be an index
	Scale  int // 1, 2, 4, 8
	Disp   int32
	RIPRel bool
}

// String implements fmt.Stringer.
func (m Mem) String() string {
	if m.RIPRel {
		return fmt.Sprintf("[rip%+#x]", m.Disp)
	}
	s := "["
	sep := ""
	if m.Base != NoReg {
		s += m.Base.String()
		sep = "+"
	}
	if m.Index != NoReg {
		s += fmt.Sprintf("%s%s*%d", sep, m.Index, m.Scale)
		sep = "+"
	}
	if m.Disp != 0 || sep == "" {
		s += fmt.Sprintf("%s%#x", sep, m.Disp)
	}
	return s + "]"
}

// Inst is one decoded instruction, including the byte offsets of every
// encoding field so the rewriter can classify where an inadvertent VMFUNC
// byte pattern falls (Table 3's "overlap case" column).
type Inst struct {
	Op   Op
	Len  int
	Cond Cond // for JCC

	// Operands. Their use depends on Op:
	//   MOV/ADD/...: Dst and Src registers, or one memory operand (M,
	//   MemIsDst) paired with a register; with HasImm, Src is the
	//   immediate.
	Dst, Src Reg
	M        Mem
	HasMem   bool
	MemIsDst bool
	Imm      int64
	HasImm   bool
	// Rel is the branch displacement for JMP/CALL/JCC (relative to the
	// end of the instruction).
	Rel int32
	// Bits32 marks a 32-bit operand-size ALU form (no REX.W); results
	// zero-extend into the full register as on real hardware.
	Bits32 bool

	// Field layout (byte offsets from instruction start; -1 if absent).
	OpcodeOff, OpcodeLen int
	ModRMOff             int
	SIBOff               int
	DispOff, DispLen     int
	ImmOff, ImmLen       int

	// Raw holds the instruction bytes.
	Raw []byte
}

// String renders an approximate Intel-syntax disassembly, for debugging and
// error messages.
func (in Inst) String() string {
	switch in.Op {
	case NOP, VMFUNC, SYSCALL, RET, INT3, HLT:
		return in.Op.String()
	case PUSH, POP:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case JMP, CALL:
		return fmt.Sprintf("%s %+d", in.Op, in.Rel)
	case JCC:
		return fmt.Sprintf("j%x %+d", int(in.Cond), in.Rel)
	case MOVI:
		if in.HasMem {
			return fmt.Sprintf("mov %s, %#x", in.M, in.Imm)
		}
		return fmt.Sprintf("mov %s, %#x", in.Dst, in.Imm)
	case IMUL3:
		if in.HasMem {
			return fmt.Sprintf("imul %s, %s, %#x", in.Dst, in.M, in.Imm)
		}
		return fmt.Sprintf("imul %s, %s, %#x", in.Dst, in.Src, in.Imm)
	case LEA:
		return fmt.Sprintf("lea %s, %s", in.Dst, in.M)
	}
	// Two-operand ALU forms.
	if in.HasImm {
		if in.HasMem {
			return fmt.Sprintf("%s %s, %#x", in.Op, in.M, in.Imm)
		}
		return fmt.Sprintf("%s %s, %#x", in.Op, in.Dst, in.Imm)
	}
	if in.HasMem {
		if in.MemIsDst {
			return fmt.Sprintf("%s %s, %s", in.Op, in.M, in.Src)
		}
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.M)
	}
	return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
}
