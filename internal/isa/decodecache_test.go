package isa

import "testing"

// withDecodeCache forces the decode-cache toggle for the duration of a test
// and restores the previous setting afterwards.
func withDecodeCache(t *testing.T, on bool) {
	t.Helper()
	prev := SetDecodeCache(on)
	t.Cleanup(func() { SetDecodeCache(prev) })
}

// withSuperblock forces the superblock toggle for the duration of a test
// and restores the previous setting afterwards. The decode-cache stat
// assertions below need per-step execution, where the cache actually runs.
func withSuperblock(t *testing.T, on bool) {
	t.Helper()
	prev := SetSuperblock(on)
	t.Cleanup(func() { SetSuperblock(prev) })
}

// loopProgram assembles a sum-1..n loop, which re-executes the same RIPs
// many times — the decode cache's bread and butter.
func loopProgram(n int32) []byte {
	var a Asm
	a.MovRI32(RAX, 0)
	a.MovRI32(RCX, n)
	top := a.Len()
	a.AluRR(ADD, RAX, RCX)
	a.AluRI8(SUB, RCX, 1)
	body := a.Len()
	a.Jcc(CondNE, 0)
	rel := int32(top - (body + 6))
	b := a.Bytes()
	b[body+2] = byte(rel)
	b[body+3] = byte(rel >> 8)
	b[body+4] = byte(rel >> 16)
	b[body+5] = byte(rel >> 24)
	a.Hlt()
	return a.Bytes()
}

// TestDecodeCacheTransparent runs the same loop with the cache on and off
// and requires identical architectural outcomes, with the cached run
// actually serving hits.
func TestDecodeCacheTransparent(t *testing.T) {
	withSuperblock(t, false)
	run := func(on bool) *Interp {
		withDecodeCache(t, on)
		ip := NewInterp()
		ip.AddRegion(0x400000, loopProgram(100))
		ip.RIP = 0x400000
		if err := ip.Run(10000); err != nil {
			t.Fatal(err)
		}
		return ip
	}
	cached, plain := run(true), run(false)
	if cached.Regs != plain.Regs || cached.ZF != plain.ZF || cached.SF != plain.SF ||
		cached.Steps != plain.Steps {
		t.Fatalf("cached run diverged: %+v vs %+v", cached.Regs, plain.Regs)
	}
	if cached.Regs[RAX] != 5050 {
		t.Fatalf("rax = %d, want 5050", cached.Regs[RAX])
	}
	if cached.DecodeHits == 0 {
		t.Fatal("loop produced no decode-cache hits")
	}
	if plain.DecodeHits != 0 || plain.DecodeMisses != 0 {
		t.Fatalf("cache-off interp touched the cache: %+v", plain)
	}
}

// TestDecodeCacheSelfModifyingCode overwrites already-executed code bytes
// in place (same instruction length) and requires the second run to execute
// the new bytes — a stale cache hit would reproduce the old result.
func TestDecodeCacheSelfModifyingCode(t *testing.T) {
	withSuperblock(t, false)
	withDecodeCache(t, true)
	prog := func(v int32) []byte {
		var a Asm
		a.MovRI32(RAX, v)
		a.Hlt()
		return a.Bytes()
	}
	code := prog(1)
	ip := NewInterp()
	ip.AddRegion(0x400000, code) // ip shares the backing slice
	ip.RIP = 0x400000
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RAX] != 1 {
		t.Fatalf("first run: rax = %d", ip.Regs[RAX])
	}
	if ip.DecodeMisses == 0 {
		t.Fatal("nothing was cached")
	}

	copy(code, prog(2)) // in-place patch, no InvalidateCode call
	ip.RIP = 0x400000
	ip.Halted = false
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RAX] != 2 {
		t.Fatalf("after in-place patch: rax = %d, want 2 (stale decode-cache hit)", ip.Regs[RAX])
	}
}

// TestDecodeCacheLengthChangingPatch overwrites executed code with
// instructions of different lengths, shifting every decode boundary.
func TestDecodeCacheLengthChangingPatch(t *testing.T) {
	withDecodeCache(t, true)
	var a Asm
	for i := 0; i < 12; i++ {
		a.Nop()
	}
	a.Hlt()
	code := a.Bytes()
	ip := NewInterp()
	ip.AddRegion(0x400000, code)
	ip.RIP = 0x400000
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}

	var b Asm
	b.MovRI32(RBX, 7) // 5+ bytes where single-byte NOPs were cached
	for b.Len() < len(code)-1 {
		b.Nop()
	}
	b.Hlt()
	patch := b.Bytes()
	if len(patch) != len(code) {
		t.Fatalf("patch length %d != code length %d", len(patch), len(code))
	}
	copy(code, patch)
	ip.RIP = 0x400000
	ip.Halted = false
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RBX] != 7 {
		t.Fatalf("rbx = %d, want 7 (stale decode across shifted boundaries)", ip.Regs[RBX])
	}
}

// TestDecodeCacheInvalidateOnAddRegion: mapping a new region drops the
// cache (a conservative, explicit invalidation point).
func TestDecodeCacheInvalidateOnAddRegion(t *testing.T) {
	withSuperblock(t, false)
	withDecodeCache(t, true)
	ip := NewInterp()
	ip.AddRegion(0x400000, loopProgram(3))
	ip.RIP = 0x400000
	if err := ip.Run(1000); err != nil {
		t.Fatal(err)
	}
	if ip.DecodeMisses == 0 {
		t.Fatal("nothing cached")
	}
	inv := ip.DecodeInvalidations
	ip.AddRegion(0x500000, make([]byte, 64))
	if ip.DecodeInvalidations != inv+1 {
		t.Fatalf("AddRegion did not invalidate (got %d, want %d)", ip.DecodeInvalidations, inv+1)
	}
}
