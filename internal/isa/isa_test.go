package isa

import (
	"bytes"
	"math/rand"
	"testing"
)

func decodeOne(t *testing.T, b []byte) Inst {
	t.Helper()
	in, err := Decode(b)
	if err != nil {
		t.Fatalf("decode %x: %v", b, err)
	}
	if in.Len != len(b) {
		t.Fatalf("decode %x: consumed %d of %d bytes (%v)", b, in.Len, len(b), in)
	}
	return in
}

func TestDecodeVMFunc(t *testing.T) {
	in := decodeOne(t, []byte{0x0f, 0x01, 0xd4})
	if in.Op != VMFUNC || in.OpcodeLen != 3 {
		t.Fatalf("%+v", in)
	}
}

func TestDecodeSimple(t *testing.T) {
	cases := []struct {
		bytes []byte
		op    Op
	}{
		{[]byte{0x90}, NOP},
		{[]byte{0xc3}, RET},
		{[]byte{0xcc}, INT3},
		{[]byte{0xf4}, HLT},
		{[]byte{0x0f, 0x05}, SYSCALL},
	}
	for _, c := range cases {
		if in := decodeOne(t, c.bytes); in.Op != c.op {
			t.Fatalf("%x decoded to %v, want %v", c.bytes, in.Op, c.op)
		}
	}
}

func TestEncodeDecodeMovRR(t *testing.T) {
	var a Asm
	a.MovRR(RBX, RDI)
	in := decodeOne(t, a.Bytes())
	if in.Op != MOV || in.Dst != RBX || in.Src != RDI {
		t.Fatalf("%v", in)
	}
}

func TestEncodeDecodeExtendedRegs(t *testing.T) {
	var a Asm
	a.MovRR(R13, R9)
	in := decodeOne(t, a.Bytes())
	if in.Dst != R13 || in.Src != R9 {
		t.Fatalf("%v", in)
	}
	var p Asm
	p.PushReg(R12)
	in = decodeOne(t, p.Bytes())
	if in.Op != PUSH || in.Dst != R12 {
		t.Fatalf("%v", in)
	}
}

func TestEncodeDecodeMemoryForms(t *testing.T) {
	mems := []Mem{
		{Base: RDI, Index: NoReg, Scale: 1},
		{Base: RDI, Index: NoReg, Scale: 1, Disp: 0x40},
		{Base: RDI, Index: NoReg, Scale: 1, Disp: 0x12345},
		{Base: RDI, Index: RCX, Scale: 1, Disp: 0xD401},
		{Base: RAX, Index: RBX, Scale: 8, Disp: -8},
		{Base: RSP, Index: NoReg, Scale: 1, Disp: 0x10},     // forces SIB
		{Base: RBP, Index: NoReg, Scale: 1},                 // forces disp8=0
		{Base: R13, Index: NoReg, Scale: 1},                 // forces disp8=0
		{Base: R12, Index: NoReg, Scale: 1},                 // forces SIB
		{Base: NoReg, Index: NoReg, Scale: 1, Disp: 0x1234}, // absolute
		{Base: NoReg, Index: RDX, Scale: 4, Disp: 0x100},    // index only
		{RIPRel: true, Disp: 0x1000, Base: NoReg, Index: NoReg, Scale: 1},
	}
	for _, m := range mems {
		var a Asm
		a.MovRM(RBX, m)
		in := decodeOne(t, a.Bytes())
		if in.Op != MOV || in.Dst != RBX || !in.HasMem {
			t.Fatalf("mem %v: decoded %v", m, in)
		}
		got := in.M
		if got.RIPRel != m.RIPRel || got.Disp != m.Disp || got.Base != m.Base || got.Index != m.Index {
			t.Fatalf("mem %v round-tripped to %v (bytes %x)", m, got, a.Bytes())
		}
		if m.Index != NoReg && got.Scale != m.Scale {
			t.Fatalf("mem %v scale round-tripped to %d", m, got.Scale)
		}
	}
}

func TestEncodeDecodeALU(t *testing.T) {
	ops := []Op{ADD, SUB, AND, OR, XOR, CMP}
	for _, op := range ops {
		var a Asm
		a.AluRR(op, RBX, RSI)
		in := decodeOne(t, a.Bytes())
		if in.Op != op || in.Dst != RBX || in.Src != RSI {
			t.Fatalf("%v: %v", op, in)
		}
		var b Asm
		b.AluRI(op, RDX, 0x1234)
		in = decodeOne(t, b.Bytes())
		if in.Op != op || in.Dst != RDX || !in.HasImm || in.Imm != 0x1234 {
			t.Fatalf("%v imm: %v", op, in)
		}
		var c Asm
		c.AluRI8(op, RDX, -5)
		in = decodeOne(t, c.Bytes())
		if in.Op != op || in.Imm != -5 {
			t.Fatalf("%v imm8: %v", op, in)
		}
		var d Asm
		d.AluMR(op, Mem{Base: RDI, Index: NoReg, Scale: 1, Disp: 8}, RCX)
		in = decodeOne(t, d.Bytes())
		if in.Op != op || !in.HasMem || !in.MemIsDst || in.Src != RCX {
			t.Fatalf("%v mem-dst: %v", op, in)
		}
	}
}

func TestEncodeDecodeImul(t *testing.T) {
	var a Asm
	a.Imul3(RCX, RDI, 0xD401)
	in := decodeOne(t, a.Bytes())
	if in.Op != IMUL3 || in.Dst != RCX || in.Src != RDI || in.Imm != 0xD401 {
		t.Fatalf("%v", in)
	}
	var b Asm
	b.Imul2(RAX, RBX)
	in = decodeOne(t, b.Bytes())
	if in.Op != IMUL2 || in.Dst != RAX || in.Src != RBX {
		t.Fatalf("%v", in)
	}
}

func TestEncodeDecodeMovImm(t *testing.T) {
	var a Asm
	a.MovRI64(R10, 0x1122334455667788)
	in := decodeOne(t, a.Bytes())
	if in.Op != MOVI || in.Dst != R10 || in.Imm != 0x1122334455667788 {
		t.Fatalf("%v", in)
	}
	var b Asm
	b.MovRI32(RSI, -42)
	in = decodeOne(t, b.Bytes())
	if in.Op != MOVI || in.Dst != RSI || in.Imm != -42 {
		t.Fatalf("%v", in)
	}
}

func TestEncodeDecodeBranches(t *testing.T) {
	var a Asm
	a.JmpRel32(0x1000)
	in := decodeOne(t, a.Bytes())
	if in.Op != JMP || in.Rel != 0x1000 {
		t.Fatalf("%v", in)
	}
	var b Asm
	b.JmpRel8(-4)
	in = decodeOne(t, b.Bytes())
	if in.Op != JMP || in.Rel != -4 {
		t.Fatalf("%v", in)
	}
	var c Asm
	c.Jcc(CondNE, 0x40)
	in = decodeOne(t, c.Bytes())
	if in.Op != JCC || in.Cond != CondNE || in.Rel != 0x40 {
		t.Fatalf("%v", in)
	}
	var d Asm
	d.CallRel32(0x99)
	in = decodeOne(t, d.Bytes())
	if in.Op != CALL || in.Rel != 0x99 {
		t.Fatalf("%v", in)
	}
}

func TestFieldOffsets(t *testing.T) {
	// REX.W 69 ModRM imm32: imul rcx, rdi, 0xD401.
	var a Asm
	a.Imul3(RCX, RDI, 0xD401)
	in := decodeOne(t, a.Bytes())
	if in.OpcodeOff != 1 || in.ModRMOff != 2 || in.ImmOff != 3 || in.ImmLen != 4 {
		t.Fatalf("field offsets: %+v", in)
	}
	// Displacement offsets with SIB.
	var b Asm
	b.Lea(RBX, Mem{Base: RDI, Index: RCX, Scale: 1, Disp: 0xD401})
	in = decodeOne(t, b.Bytes())
	if in.SIBOff < 0 || in.DispOff != in.SIBOff+1 || in.DispLen != 4 {
		t.Fatalf("sib/disp offsets: %+v", in)
	}
}

func TestDecodeAllStream(t *testing.T) {
	var a Asm
	a.PushReg(RBX)
	a.MovRI32(RBX, 7)
	a.AluRR(ADD, RBX, RBX)
	a.PopReg(RBX)
	a.Ret()
	insts, err := DecodeAll(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 5 {
		t.Fatalf("decoded %d instructions, want 5", len(insts))
	}
}

func TestDecodeTruncated(t *testing.T) {
	var a Asm
	a.MovRI64(RAX, 0x1234)
	b := a.Bytes()
	if _, err := Decode(b[:len(b)-1]); err == nil {
		t.Fatal("truncated imm64 decoded")
	}
	if _, err := Decode([]byte{0x48}); err == nil {
		t.Fatal("bare REX decoded")
	}
}

// randMem produces a random valid memory operand.
func randMem(rng *rand.Rand) Mem {
	m := Mem{Base: NoReg, Index: NoReg, Scale: 1}
	if rng.Intn(4) > 0 {
		m.Base = Reg(rng.Intn(16))
	}
	if rng.Intn(3) == 0 {
		for {
			m.Index = Reg(rng.Intn(16))
			if m.Index != RSP {
				break
			}
		}
		m.Scale = 1 << rng.Intn(4)
	}
	if m.Base == NoReg && m.Index == NoReg {
		m.Base = Reg(rng.Intn(16))
	}
	switch rng.Intn(3) {
	case 0:
	case 1:
		m.Disp = int32(int8(rng.Uint32()))
	case 2:
		m.Disp = int32(rng.Uint32())
	}
	return m
}

// TestEncodeDecodeRoundTripProperty encodes random instructions and checks
// the decoder recovers the same operands and consumes exactly the emitted
// bytes.
func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	aluOps := []Op{ADD, SUB, AND, OR, XOR, CMP}
	for i := 0; i < 3000; i++ {
		var a Asm
		form := rng.Intn(10)
		var check func(in Inst) bool
		switch form {
		case 0:
			dst, src := Reg(rng.Intn(16)), Reg(rng.Intn(16))
			a.MovRR(dst, src)
			check = func(in Inst) bool { return in.Op == MOV && in.Dst == dst && in.Src == src }
		case 1:
			dst, m := Reg(rng.Intn(16)), randMem(rng)
			a.MovRM(dst, m)
			check = func(in Inst) bool { return in.Op == MOV && in.Dst == dst && in.HasMem && !in.MemIsDst }
		case 2:
			src, m := Reg(rng.Intn(16)), randMem(rng)
			a.MovMR(m, src)
			check = func(in Inst) bool { return in.Op == MOV && in.Src == src && in.HasMem && in.MemIsDst }
		case 3:
			op := aluOps[rng.Intn(len(aluOps))]
			dst, src := Reg(rng.Intn(16)), Reg(rng.Intn(16))
			a.AluRR(op, dst, src)
			check = func(in Inst) bool { return in.Op == op && in.Dst == dst && in.Src == src }
		case 4:
			op := aluOps[rng.Intn(len(aluOps))]
			dst, imm := Reg(rng.Intn(16)), int32(rng.Uint32())
			a.AluRI(op, dst, imm)
			check = func(in Inst) bool { return in.Op == op && in.Dst == dst && in.Imm == int64(imm) }
		case 5:
			dst, m := Reg(rng.Intn(16)), randMem(rng)
			a.Lea(dst, m)
			check = func(in Inst) bool { return in.Op == LEA && in.Dst == dst && in.HasMem }
		case 6:
			dst, src, imm := Reg(rng.Intn(16)), Reg(rng.Intn(16)), int32(rng.Uint32())
			a.Imul3(dst, src, imm)
			check = func(in Inst) bool {
				return in.Op == IMUL3 && in.Dst == dst && in.Src == src && in.Imm == int64(imm)
			}
		case 7:
			dst, imm := Reg(rng.Intn(16)), int64(rng.Uint64())
			a.MovRI64(dst, imm)
			check = func(in Inst) bool { return in.Op == MOVI && in.Dst == dst && in.Imm == imm }
		case 8:
			r := Reg(rng.Intn(16))
			a.PushReg(r)
			check = func(in Inst) bool { return in.Op == PUSH && in.Dst == r }
		case 9:
			op := aluOps[rng.Intn(len(aluOps))]
			m, src := randMem(rng), Reg(rng.Intn(16))
			a.AluMR(op, m, src)
			check = func(in Inst) bool { return in.Op == op && in.HasMem && in.MemIsDst && in.Src == src }
		}
		in, err := Decode(a.Bytes())
		if err != nil {
			t.Fatalf("iter %d form %d: decode %x: %v", i, form, a.Bytes(), err)
		}
		if in.Len != a.Len() {
			t.Fatalf("iter %d form %d: len %d != %d for %x", i, form, in.Len, a.Len(), a.Bytes())
		}
		if !check(in) {
			t.Fatalf("iter %d form %d: operands lost: %x -> %v", i, form, a.Bytes(), in)
		}
		if !bytes.Equal(in.Raw, a.Bytes()) {
			t.Fatalf("iter %d: raw bytes mismatch", i)
		}
	}
}
