package isa

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// sbState captures every architecturally visible output of a run.
type sbState struct {
	Regs           [16]uint64
	RIP            uint64
	ZF, SF, CF, OF bool
	VMFunc, Sys    int
	Halted         bool
	Steps          int
	Err            string
	Data, Stack    []byte
}

// runProgram executes code with the given toggle and returns the final
// state, including copies of the data and stack regions.
func runSBProgram(t *testing.T, code []byte, superblock bool, maxSteps int) (sbState, *Interp) {
	t.Helper()
	prev := SetSuperblock(superblock)
	defer SetSuperblock(prev)
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i * 7)
	}
	stack := make([]byte, 512)
	ip := NewInterp()
	ip.AddRegion(0x400000, append([]byte(nil), code...))
	ip.AddRegion(0x600000, data)
	ip.AddRegion(0x7ff000, stack)
	ip.RIP = 0x400000
	ip.Regs[RBP] = 0x600000
	ip.Regs[RSP] = 0x7ff000 + 256
	err := ip.Run(maxSteps)
	st := sbState{
		Regs: ip.Regs, RIP: ip.RIP,
		ZF: ip.ZF, SF: ip.SF, CF: ip.CF, OF: ip.OF,
		VMFunc: ip.VMFuncCount, Sys: ip.SyscallCount,
		Halted: ip.Halted, Steps: ip.Steps,
		Data: data, Stack: stack,
	}
	if err != nil {
		st.Err = err.Error()
	}
	return st, ip
}

// diffState fails the test if two runs diverged anywhere.
func diffState(t *testing.T, on, off sbState) {
	t.Helper()
	if on.Regs != off.Regs {
		t.Errorf("regs diverged:\n on: %#x\noff: %#x", on.Regs, off.Regs)
	}
	if on.RIP != off.RIP || on.Steps != off.Steps || on.Halted != off.Halted {
		t.Errorf("control diverged: on rip=%#x steps=%d halted=%v, off rip=%#x steps=%d halted=%v",
			on.RIP, on.Steps, on.Halted, off.RIP, off.Steps, off.Halted)
	}
	if on.ZF != off.ZF || on.SF != off.SF || on.CF != off.CF || on.OF != off.OF {
		t.Errorf("flags diverged: on ZSCO=%v%v%v%v off=%v%v%v%v",
			on.ZF, on.SF, on.CF, on.OF, off.ZF, off.SF, off.CF, off.OF)
	}
	if on.VMFunc != off.VMFunc || on.Sys != off.Sys {
		t.Errorf("counters diverged: on vmfunc=%d sys=%d, off vmfunc=%d sys=%d",
			on.VMFunc, on.Sys, off.VMFunc, off.Sys)
	}
	if on.Err != off.Err {
		t.Errorf("errors diverged:\n on: %q\noff: %q", on.Err, off.Err)
	}
	if string(on.Data) != string(off.Data) {
		t.Error("data region diverged")
	}
	if string(on.Stack) != string(off.Stack) {
		t.Error("stack region diverged")
	}
}

// randomProgram emits a terminating program mixing straight-line work,
// memory traffic through RBP, balanced push/pop, forward branches, counted
// loops, and VMFUNC/SYSCALL terminators.
func randomProgram(rng *rand.Rand) []byte {
	var a Asm
	gpr := []Reg{RAX, RBX, RCX, RDX, RSI, RDI, R8, R9, R10, R11}
	alu := []Op{ADD, SUB, AND, OR, XOR, CMP}
	mem := func() Mem { return Mem{Base: RBP, Index: NoReg, Disp: int32(rng.Intn(31)) * 8} }
	for i := range gpr {
		a.MovRI64(gpr[i], rng.Int63())
	}
	n := 20 + rng.Intn(120)
	depth := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(14) {
		case 0:
			a.Nop()
		case 1:
			a.MovRR(gpr[rng.Intn(len(gpr))], gpr[rng.Intn(len(gpr))])
		case 2:
			a.MovRI64(gpr[rng.Intn(len(gpr))], rng.Int63()-rng.Int63())
		case 3:
			a.MovRI32(gpr[rng.Intn(len(gpr))], int32(rng.Uint32()))
		case 4:
			a.MovRM(gpr[rng.Intn(len(gpr))], mem())
		case 5:
			a.MovMR(mem(), gpr[rng.Intn(len(gpr))])
		case 6:
			a.AluRR(alu[rng.Intn(len(alu))], gpr[rng.Intn(len(gpr))], gpr[rng.Intn(len(gpr))])
		case 7:
			a.Alu32RR(alu[rng.Intn(len(alu))], gpr[rng.Intn(len(gpr))], gpr[rng.Intn(len(gpr))])
		case 8:
			a.AluRI(alu[rng.Intn(len(alu))], gpr[rng.Intn(len(gpr))], int32(rng.Uint32()))
		case 9:
			a.AluMR(alu[rng.Intn(len(alu))], mem(), gpr[rng.Intn(len(gpr))])
		case 10:
			a.Imul2(gpr[rng.Intn(len(gpr))], gpr[rng.Intn(len(gpr))])
		case 11:
			if rng.Intn(2) == 0 {
				a.Lea(gpr[rng.Intn(len(gpr))], mem())
			} else {
				a.TestRR(gpr[rng.Intn(len(gpr))], gpr[rng.Intn(len(gpr))])
			}
		case 12:
			if depth < 8 && rng.Intn(2) == 0 {
				a.PushReg(gpr[rng.Intn(len(gpr))])
				depth++
			} else if depth > 0 {
				a.PopReg(gpr[rng.Intn(len(gpr))])
				depth--
			} else {
				a.Vmfunc()
			}
		case 13:
			// Forward conditional skip over exactly one instruction.
			var skip Asm
			skip.MovRI32(gpr[rng.Intn(len(gpr))], int32(rng.Uint32()))
			conds := []Cond{CondE, CondNE, CondB, CondAE, CondL, CondGE, CondS, CondNS}
			a.Jcc(conds[rng.Intn(len(conds))], int32(skip.Len()))
			a.emit(skip.Bytes()...)
		}
		if rng.Intn(17) == 0 {
			a.Syscall()
		}
	}
	for ; depth > 0; depth-- {
		a.PopReg(gpr[rng.Intn(len(gpr))])
	}
	// Counted loop: sum into RAX, decrement RCX until zero.
	a.MovRI32(RAX, 0)
	a.MovRI32(RCX, int32(3+rng.Intn(40)))
	top := a.Len()
	a.AluRR(ADD, RAX, RCX)
	a.AluRI8(SUB, RCX, 1)
	a.Jcc(CondNE, int32(top-(a.Len()+6)))
	a.Hlt()
	return a.Bytes()
}

// TestSuperblockLockstepRandomPrograms runs random programs with
// superblocks on and off and requires every architecturally visible
// outcome — registers, flags, RIP, step count, memory, errors — to match.
func TestSuperblockLockstepRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5B))
	blocksUsed := false
	for trial := 0; trial < 200; trial++ {
		code := randomProgram(rng)
		on, ipOn := runSBProgram(t, code, true, 100000)
		off, ipOff := runSBProgram(t, code, false, 100000)
		diffState(t, on, off)
		if t.Failed() {
			t.Fatalf("trial %d diverged (program %d bytes)", trial, len(code))
		}
		if ipOn.SBStats.Execs > 0 {
			blocksUsed = true
		}
		if ipOff.SBStats.Execs != 0 {
			t.Fatalf("superblock-off run dispatched %d blocks", ipOff.SBStats.Execs)
		}
	}
	if !blocksUsed {
		t.Fatal("no trial dispatched a superblock")
	}
}

// TestSuperblockMaxStepsExact: the step limit must trip at the same step
// count, RIP, and error text whether or not the limit lands mid-block.
func TestSuperblockMaxStepsExact(t *testing.T) {
	code := loopProgram(1000)
	for _, maxSteps := range []int{1, 2, 3, 5, 17, 100, 1001} {
		on, _ := runSBProgram(t, code, true, maxSteps)
		off, _ := runSBProgram(t, code, false, maxSteps)
		diffState(t, on, off)
		if t.Failed() {
			t.Fatalf("maxSteps=%d diverged", maxSteps)
		}
		if on.Err == "" {
			t.Fatalf("maxSteps=%d: expected step-limit error", maxSteps)
		}
	}
}

// smcProgram builds a program whose third instruction stores new code
// bytes over its own fifth instruction — all inside one straight-line
// superblock. The overwritten instruction originally loads RCX=1; the
// stored bytes change it to load newVal.
func smcProgram(newVal int32) []byte {
	var patch Asm
	patch.MovRI32(RCX, newVal)
	patch.Nop() // pad the stored quadword to 8 bytes
	for patch.Len() < 8 {
		patch.Nop()
	}
	newBytes := binary.LittleEndian.Uint64(patch.Bytes()[:8])

	build := func(target uint64) []byte {
		var a Asm
		a.MovRI64(RBX, int64(target))
		a.MovRI64(RAX, int64(newBytes))
		a.MovMR(Mem{Base: RBX, Index: NoReg}, RAX)
		a.MovRI32(RCX, 1) // the overwritten instruction
		a.Nop()
		a.Nop()
		a.Nop()
		a.Hlt()
		return a.Bytes()
	}
	// First pass with a dummy target to learn the overwritten
	// instruction's offset (immediate values do not change encoding
	// lengths), then rebuild with the real address.
	var a Asm
	a.MovRI64(RBX, 0)
	a.MovRI64(RAX, 0)
	a.MovMR(Mem{Base: RBX, Index: NoReg}, RAX)
	targetOff := a.Len()
	return build(0x400000 + uint64(targetOff))
}

// TestSuperblockSelfModifyingBail: a store over the block's own upcoming
// bytes must bail out of the fused run and execute the freshly written
// instruction, exactly like per-step execution does.
func TestSuperblockSelfModifyingBail(t *testing.T) {
	code := smcProgram(2)
	on, ipOn := runSBProgram(t, code, true, 1000)
	off, _ := runSBProgram(t, code, false, 1000)
	diffState(t, on, off)
	if on.Regs[RCX] != 2 {
		t.Fatalf("rcx = %d, want 2 (stale fused instruction executed)", on.Regs[RCX])
	}
	if ipOn.SBStats.Bails == 0 {
		t.Fatal("self-modifying store did not bail out of the superblock")
	}
}

// TestSuperblockRewriteBetweenDispatches patches code bytes in place after
// a block is cached; the next dispatch must revalidate, drop the stale
// block, and execute the new bytes.
func TestSuperblockRewriteBetweenDispatches(t *testing.T) {
	prev := SetSuperblock(true)
	defer SetSuperblock(prev)
	prog := func(v int32) []byte {
		var a Asm
		a.MovRI32(RAX, v)
		a.Nop()
		a.Hlt()
		return a.Bytes()
	}
	code := prog(1)
	ip := NewInterp()
	ip.AddRegion(0x400000, code) // ip shares the backing slice
	ip.RIP = 0x400000
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RAX] != 1 || ip.SBStats.Formed == 0 {
		t.Fatalf("first run: rax=%d formed=%d", ip.Regs[RAX], ip.SBStats.Formed)
	}
	copy(code, prog(2)) // in-place patch, no InvalidateCode call
	ip.RIP = 0x400000
	ip.Halted = false
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RAX] != 2 {
		t.Fatalf("after in-place patch: rax = %d, want 2 (stale superblock hit)", ip.Regs[RAX])
	}
	if ip.SBStats.Invalidations == 0 {
		t.Fatal("patched block was not invalidated")
	}
}

// TestSuperblockInvalidateOnAddRegion mirrors the decode-cache test:
// mapping a new region drops every cached block.
func TestSuperblockInvalidateOnAddRegion(t *testing.T) {
	prev := SetSuperblock(true)
	defer SetSuperblock(prev)
	ip := NewInterp()
	ip.AddRegion(0x400000, loopProgram(3))
	ip.RIP = 0x400000
	if err := ip.Run(1000); err != nil {
		t.Fatal(err)
	}
	if ip.SBStats.Formed == 0 {
		t.Fatal("nothing fused")
	}
	inv := ip.SBStats.Invalidations
	ip.AddRegion(0x500000, make([]byte, 64))
	if ip.SBStats.Invalidations != inv+1 {
		t.Fatalf("AddRegion did not invalidate blocks (got %d, want %d)", ip.SBStats.Invalidations, inv+1)
	}
	if len(ip.sbCache) != 0 {
		t.Fatalf("block cache not empty after AddRegion: %d entries", len(ip.sbCache))
	}
}

// TestSuperblockPageBoundary: formation never fuses past the entry page;
// execution across the boundary uses a second block.
func TestSuperblockPageBoundary(t *testing.T) {
	prev := SetSuperblock(true)
	defer SetSuperblock(prev)
	code := make([]byte, 0, sbPageSize+16)
	for len(code) < sbPageSize+8 {
		code = append(code, 0x90) // NOP
	}
	code = append(code, 0xf4) // HLT
	ip := NewInterp()
	ip.AddRegion(0x400000, code) // page-aligned base
	entry := uint64(0x400000 + sbPageSize - 6)
	ip.RIP = entry
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.SBStats.LenHist[6] == 0 {
		t.Fatalf("expected a 6-instruction block ending at the page boundary; hist=%v", ip.SBStats.LenHist[:16])
	}
	if ip.SBStats.Formed < 2 {
		t.Fatalf("expected a second block after the boundary, formed=%d", ip.SBStats.Formed)
	}
}

// TestSuperblockStats sanity-checks the block-length histogram and mean on
// a single straight-line program.
func TestSuperblockStats(t *testing.T) {
	prev := SetSuperblock(true)
	defer SetSuperblock(prev)
	var a Asm
	for i := 0; i < 9; i++ {
		a.Nop()
	}
	a.Hlt()
	ip := NewInterp()
	ip.AddRegion(0x400000, a.Bytes())
	ip.RIP = 0x400000
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	st := &ip.SBStats
	if st.Formed != 1 || st.Execs != 1 || st.Instrs != 10 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LenHist[10] != 1 {
		t.Fatalf("LenHist[10] = %d, want 1", st.LenHist[10])
	}
	if got := st.MeanLen(); got != 10 {
		t.Fatalf("MeanLen = %v, want 10", got)
	}
}
