package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// runALU executes one ALU instruction on fresh interpreter state and
// returns the destination register value.
func runALU(t *testing.T, op Op, a, b uint64) uint64 {
	t.Helper()
	var asm Asm
	asm.MovRI64(RAX, int64(a))
	asm.MovRI64(RBX, int64(b))
	asm.AluRR(op, RAX, RBX)
	asm.Hlt()
	ip := NewInterp()
	ip.AddRegion(0x1000, asm.Bytes())
	ip.RIP = 0x1000
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	return ip.Regs[RAX]
}

// TestALUSemanticsProperty checks the interpreter's ALU results against Go
// arithmetic for random operands.
func TestALUSemanticsProperty(t *testing.T) {
	cases := []struct {
		op Op
		f  func(a, b uint64) uint64
	}{
		{ADD, func(a, b uint64) uint64 { return a + b }},
		{SUB, func(a, b uint64) uint64 { return a - b }},
		{AND, func(a, b uint64) uint64 { return a & b }},
		{OR, func(a, b uint64) uint64 { return a | b }},
		{XOR, func(a, b uint64) uint64 { return a ^ b }},
	}
	for _, c := range cases {
		c := c
		f := func(a, b uint64) bool {
			return runALU(t, c.op, a, b) == c.f(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

// TestCmpJccAgreesWithGoComparisons: signed and unsigned branch conditions
// match Go's comparison operators for random operands.
func TestCmpJccAgreesWithGoComparisons(t *testing.T) {
	conds := []struct {
		cond Cond
		f    func(a, b uint64) bool
	}{
		{CondE, func(a, b uint64) bool { return a == b }},
		{CondNE, func(a, b uint64) bool { return a != b }},
		{CondB, func(a, b uint64) bool { return a < b }},
		{CondAE, func(a, b uint64) bool { return a >= b }},
		{CondBE, func(a, b uint64) bool { return a <= b }},
		{CondA, func(a, b uint64) bool { return a > b }},
		{CondL, func(a, b uint64) bool { return int64(a) < int64(b) }},
		{CondGE, func(a, b uint64) bool { return int64(a) >= int64(b) }},
		{CondLE, func(a, b uint64) bool { return int64(a) <= int64(b) }},
		{CondG, func(a, b uint64) bool { return int64(a) > int64(b) }},
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a, b := rng.Uint64(), rng.Uint64()
		if trial%3 == 0 {
			b = a // exercise equality
		}
		for _, c := range conds {
			var asm Asm
			asm.MovRI64(RAX, int64(a))
			asm.MovRI64(RBX, int64(b))
			asm.AluRR(CMP, RAX, RBX)
			asm.MovRI32(RCX, 0)
			asm.Jcc(c.cond, 7) // skip the next 7-byte mov when taken
			asm.MovRI32(RCX, 0)
			asm.MovRI32(RDX, 1) // landing pad
			asm.Hlt()
			// Taken path must set rcx=1: rewrite the skipped mov to rcx=0
			// and the pre-branch mov to rcx=1.
			code := asm.Bytes()
			ip := NewInterp()
			ip.AddRegion(0x1000, code)
			ip.RIP = 0x1000
			if err := ip.Run(100); err != nil {
				t.Fatal(err)
			}
			// Taken => the MovRI32 after the branch was skipped; distinguish
			// by instruction count (8 instructions total, 7 when taken).
			wantSteps := 8
			if c.f(a, b) {
				wantSteps = 7
			}
			if ip.Steps != wantSteps {
				t.Fatalf("cond %#x a=%#x b=%#x: steps=%d want %d", int(c.cond), a, b, ip.Steps, wantSteps)
			}
		}
	}
}

// TestImulMatchesGoMultiplication.
func TestImulMatchesGoMultiplication(t *testing.T) {
	f := func(a, b int64) bool {
		var asm Asm
		asm.MovRI64(RSI, a)
		asm.MovRI64(RDI, b)
		asm.Imul2(RSI, RDI)
		asm.Hlt()
		ip := NewInterp()
		ip.AddRegion(0x1000, asm.Bytes())
		ip.RIP = 0x1000
		if err := ip.Run(100); err != nil {
			return false
		}
		return ip.Regs[RSI] == uint64(a*b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAlu32ZeroExtends: 32-bit ALU results clear the upper half, as on real
// hardware.
func TestAlu32ZeroExtends(t *testing.T) {
	var asm Asm
	asm.MovRI64(RAX, -1) // all ones
	asm.MovRI64(RBX, 1)
	asm.Alu32RR(ADD, RAX, RBX) // eax = 0xFFFFFFFF + 1 = 0, zero-extended
	asm.Hlt()
	ip := NewInterp()
	ip.AddRegion(0x1000, asm.Bytes())
	ip.RIP = 0x1000
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RAX] != 0 {
		t.Fatalf("rax = %#x, want 0 (zero-extension)", ip.Regs[RAX])
	}
}
