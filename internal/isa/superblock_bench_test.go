package isa

import "testing"

// sbBenchInterp builds an interpreter over the 1..100 sum loop with the
// superblock toggle pinned for the benchmark's duration (decode cache on,
// as in the default configuration).
func sbBenchInterp(b *testing.B, superblock bool) *Interp {
	b.Helper()
	prevDec := SetDecodeCache(true)
	prevSB := SetSuperblock(superblock)
	b.Cleanup(func() { SetDecodeCache(prevDec); SetSuperblock(prevSB) })
	ip := NewInterp()
	ip.AddRegion(0x400000, loopProgram(100))
	return ip
}

// BenchmarkSuperblockStep measures fused direct-threaded dispatch: the
// loop body executes as cached superblocks, one byte-validation per block.
func BenchmarkSuperblockStep(b *testing.B) {
	runLoop(b, sbBenchInterp(b, true))
}

// BenchmarkSuperblockOffStep is the identical loop through per-step
// dispatch (decode cache still on), isolating the superblock win.
func BenchmarkSuperblockOffStep(b *testing.B) {
	runLoop(b, sbBenchInterp(b, false))
}
