package isa

import "fmt"

// MovMI32 emits MOV [m], imm32 sign-extended (REX.W C7 /0 id).
func (a *Asm) MovMI32(m Mem, imm int32) {
	b, x := memRegs(m)
	a.emit(rex(true, RAX, x, b), 0xc7)
	a.emitModRMMem(0, m)
	a.emit32(imm)
}

// TestMR emits TEST [m], src (REX.W 85 /r).
func (a *Asm) TestMR(m Mem, src Reg) {
	b, x := memRegs(m)
	a.emit(rex(true, src, x, b), 0x85)
	a.emitModRMMem(src, m)
}

// Encode re-emits a (possibly modified) decoded instruction. The rewriter
// decodes an instruction, substitutes registers or operand values, and calls
// Encode to produce the replacement bytes. Branch instructions are emitted
// with the Rel currently stored on the Inst — callers adjust Rel when moving
// an instruction to a new address.
func (a *Asm) Encode(in Inst) error {
	switch in.Op {
	case NOP:
		// Multi-byte NOPs re-encode as the equivalent run of 1-byte NOPs.
		n := in.Len
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			a.Nop()
		}
	case VMFUNC:
		a.Vmfunc()
	case SYSCALL:
		a.Syscall()
	case RET:
		a.Ret()
	case INT3:
		a.Int3()
	case HLT:
		a.Hlt()
	case PUSH:
		a.PushReg(in.Dst)
	case POP:
		a.PopReg(in.Dst)
	case MOV:
		switch {
		case in.HasMem && in.MemIsDst:
			a.MovMR(in.M, in.Src)
		case in.HasMem:
			a.MovRM(in.Dst, in.M)
		default:
			a.MovRR(in.Dst, in.Src)
		}
	case MOVI:
		switch {
		case in.HasMem:
			a.MovMI32(in.M, int32(in.Imm))
		case in.ImmLen == 8:
			a.MovRI64(in.Dst, in.Imm)
		default:
			a.MovRI32(in.Dst, int32(in.Imm))
		}
	case ADD, SUB, AND, OR, XOR, CMP:
		if in.Bits32 {
			a.Alu32RR(in.Op, in.Dst, in.Src)
			return nil
		}
		switch {
		case in.HasImm && in.HasMem:
			a.AluMI(in.Op, in.M, int32(in.Imm))
		case in.HasImm:
			a.AluRI(in.Op, in.Dst, int32(in.Imm))
		case in.HasMem && in.MemIsDst:
			a.AluMR(in.Op, in.M, in.Src)
		case in.HasMem:
			a.AluRM(in.Op, in.Dst, in.M)
		default:
			a.AluRR(in.Op, in.Dst, in.Src)
		}
	case TEST:
		if in.HasMem {
			a.TestMR(in.M, in.Src)
		} else {
			a.TestRR(in.Dst, in.Src)
		}
	case IMUL2:
		if in.HasMem {
			a.Imul2M(in.Dst, in.M)
		} else {
			a.Imul2(in.Dst, in.Src)
		}
	case IMUL3:
		if in.HasMem {
			a.Imul3M(in.Dst, in.M, int32(in.Imm))
		} else {
			a.Imul3(in.Dst, in.Src, int32(in.Imm))
		}
	case LEA:
		a.Lea(in.Dst, in.M)
	case JMP:
		a.JmpRel32(in.Rel)
	case CALL:
		a.CallRel32(in.Rel)
	case JCC:
		a.Jcc(in.Cond, in.Rel)
	default:
		return fmt.Errorf("isa: cannot re-encode op %v", in.Op)
	}
	return nil
}
