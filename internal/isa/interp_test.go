package isa

import "testing"

// runProgram executes code at base 0x400000 with a 64 KiB stack/data region
// at 0x100000, until HLT.
func runProgram(t *testing.T, build func(a *Asm)) *Interp {
	t.Helper()
	var a Asm
	build(&a)
	a.Hlt()
	ip := NewInterp()
	ip.AddRegion(0x400000, a.Bytes())
	ip.AddRegion(0x100000, make([]byte, 1<<16))
	ip.RIP = 0x400000
	ip.Regs[RSP] = 0x100000 + 1<<15
	if err := ip.Run(10000); err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestInterpMovAdd(t *testing.T) {
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RAX, 40)
		a.MovRI32(RBX, 2)
		a.AluRR(ADD, RAX, RBX)
	})
	if ip.Regs[RAX] != 42 {
		t.Fatalf("rax = %d", ip.Regs[RAX])
	}
}

func TestInterpPushPop(t *testing.T) {
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RAX, 7)
		a.PushReg(RAX)
		a.MovRI32(RAX, 0)
		a.PopReg(RBX)
	})
	if ip.Regs[RBX] != 7 {
		t.Fatalf("rbx = %d", ip.Regs[RBX])
	}
}

func TestInterpMemoryOps(t *testing.T) {
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RDI, 0x100000)
		a.MovRI32(RAX, 0x1234)
		a.MovMR(Mem{Base: RDI, Index: NoReg, Scale: 1, Disp: 0x40}, RAX)
		a.MovRM(RBX, Mem{Base: RDI, Index: NoReg, Scale: 1, Disp: 0x40})
		a.AluMI(ADD, Mem{Base: RDI, Index: NoReg, Scale: 1, Disp: 0x40}, 1)
		a.MovRM(RCX, Mem{Base: RDI, Index: NoReg, Scale: 1, Disp: 0x40})
	})
	if ip.Regs[RBX] != 0x1234 || ip.Regs[RCX] != 0x1235 {
		t.Fatalf("rbx=%#x rcx=%#x", ip.Regs[RBX], ip.Regs[RCX])
	}
}

func TestInterpLea(t *testing.T) {
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RDI, 0x1000)
		a.MovRI32(RCX, 0x20)
		a.Lea(RBX, Mem{Base: RDI, Index: RCX, Scale: 4, Disp: 0xD401})
	})
	want := uint64(0x1000 + 0x20*4 + 0xD401)
	if ip.Regs[RBX] != want {
		t.Fatalf("rbx=%#x want %#x", ip.Regs[RBX], want)
	}
}

func TestInterpImul(t *testing.T) {
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RDI, 6)
		a.Imul3(RCX, RDI, 7)
		a.MovRI32(RAX, 3)
		a.MovRI32(RBX, 5)
		a.Imul2(RAX, RBX)
	})
	if ip.Regs[RCX] != 42 || ip.Regs[RAX] != 15 {
		t.Fatalf("rcx=%d rax=%d", ip.Regs[RCX], ip.Regs[RAX])
	}
}

func TestInterpBranching(t *testing.T) {
	// Loop: sum 1..5 using jcc backward.
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RAX, 0)
		a.MovRI32(RCX, 5)
		top := a.Len()
		a.AluRR(ADD, RAX, RCX)
		a.AluRI8(SUB, RCX, 1)
		body := a.Len()
		a.Jcc(CondNE, 0) // placeholder
		// Patch the rel32 to jump back to top.
		rel := int32(top - (body + 6))
		b := a.Bytes()
		b[body+2] = byte(rel)
		b[body+3] = byte(rel >> 8)
		b[body+4] = byte(rel >> 16)
		b[body+5] = byte(rel >> 24)
	})
	if ip.Regs[RAX] != 15 {
		t.Fatalf("sum = %d, want 15", ip.Regs[RAX])
	}
}

func TestInterpCallRet(t *testing.T) {
	// call +1 (skip a HLT); callee sets rbx and returns.
	var a Asm
	a.CallRel32(1) // skip the HLT that follows
	a.Hlt()
	a.MovRI32(RBX, 99)
	a.Ret()
	ip := NewInterp()
	ip.AddRegion(0x400000, a.Bytes())
	ip.AddRegion(0x100000, make([]byte, 4096))
	ip.RIP = 0x400000
	ip.Regs[RSP] = 0x100000 + 2048
	if err := ip.Run(100); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RBX] != 99 {
		t.Fatalf("rbx = %d", ip.Regs[RBX])
	}
}

func TestInterpVMFuncCounted(t *testing.T) {
	ip := runProgram(t, func(a *Asm) {
		a.Vmfunc()
		a.Vmfunc()
	})
	if ip.VMFuncCount != 2 {
		t.Fatalf("vmfunc count = %d", ip.VMFuncCount)
	}
}

func TestInterpInt3Traps(t *testing.T) {
	var a Asm
	a.Int3()
	ip := NewInterp()
	ip.AddRegion(0x400000, a.Bytes())
	ip.RIP = 0x400000
	if err := ip.Step(); err == nil {
		t.Fatal("int3 did not trap")
	}
}

func TestInterpFaultOnWildAccess(t *testing.T) {
	var a Asm
	a.MovRM(RAX, Mem{Base: NoReg, Index: NoReg, Scale: 1, Disp: 0x10})
	ip := NewInterp()
	ip.AddRegion(0x400000, a.Bytes())
	ip.RIP = 0x400000
	if err := ip.Step(); err == nil {
		t.Fatal("unmapped access did not fault")
	}
}

func TestInterpFlagsSignedCompare(t *testing.T) {
	// CMP -1, 1 then JL should be taken.
	ip := runProgram(t, func(a *Asm) {
		a.MovRI32(RAX, -1)
		a.MovRI32(RBX, 1)
		a.AluRR(CMP, RAX, RBX)
		a.Jcc(CondL, 7) // skip the next MOV (7 bytes)
		a.MovRI32(RCX, 1)
		a.MovRI32(RDX, 2)
	})
	if ip.Regs[RCX] != 0 {
		t.Fatal("JL not taken for -1 < 1")
	}
	if ip.Regs[RDX] != 2 {
		t.Fatal("fall-through after jump target lost")
	}
}

func TestInterpRIPRelative(t *testing.T) {
	// mov rax, [rip+disp] reading a constant placed after the code.
	var a Asm
	a.MovRM(RAX, Mem{RIPRel: true, Base: NoReg, Index: NoReg, Scale: 1, Disp: 1}) // points past HLT
	a.Hlt()
	code := a.Bytes()
	code = append(code, 0xEF, 0xBE, 0, 0, 0, 0, 0, 0) // the constant 0xBEEF
	ip := NewInterp()
	ip.AddRegion(0x400000, code)
	ip.RIP = 0x400000
	if err := ip.Run(10); err != nil {
		t.Fatal(err)
	}
	if ip.Regs[RAX] != 0xBEEF {
		t.Fatalf("rip-relative load got %#x", ip.Regs[RAX])
	}
}
