package mk

import (
	"bytes"
	"errors"
	"testing"

	"skybridge/internal/hw"
	"skybridge/internal/sim"
)

// world builds a kernel with a client and a server process.
func world(t *testing.T, flavor Flavor, kpti bool) (*sim.Engine, *Kernel, *Process, *Process) {
	t.Helper()
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 1 << 30}))
	k := New(Config{Flavor: flavor, KPTI: kpti}, eng)
	client := k.NewProcess("client")
	server := k.NewProcess("server")
	return eng, k, client, server
}

// echoWorld wires a server that echoes Regs[0]+1 and copies its request
// payload back. rounds calls are made from the client; returns measured
// round-trip cycles (total/rounds) after a warmup round.
func runEcho(t *testing.T, flavor Flavor, sameCore bool, payload int, rounds int) (cycles uint64, k *Kernel) {
	t.Helper()
	eng, kern, client, server := world(t, flavor, false)
	k = kern
	ep := k.NewEndpoint("echo")
	client.Grant(ep)

	serverCore := k.Mach.Cores[0]
	if !sameCore {
		serverCore = k.Mach.Cores[1]
	}
	srvBuf := server.Alloc(hw.PageSize)
	server.Spawn("srv", serverCore, func(env *Env) {
		k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg {
			reply := Msg{Regs: [4]uint64{req.Regs[0] + 1}}
			if req.Len > 0 {
				reply.Buf = srvBuf // echo back what we received
				reply.Len = req.Len
			}
			return reply
		})
	})

	var measured uint64
	cliBuf := client.Alloc(hw.PageSize)
	cliReply := client.Alloc(hw.PageSize)
	client.Spawn("cli", k.Mach.Cores[0], func(env *Env) {
		req := Msg{Regs: [4]uint64{7}}
		if payload > 0 {
			req.Buf, req.Len = cliBuf, payload
		}
		// Warmup.
		for i := 0; i < 16; i++ {
			if _, err := env.Call(ep, req, cliReply); err != nil {
				t.Errorf("warmup call: %v", err)
				break
			}
		}
		start := env.Now()
		for i := 0; i < rounds; i++ {
			reply, err := env.Call(ep, req, cliReply)
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if reply.Regs[0] != 8 {
				t.Errorf("reply reg = %d, want 8", reply.Regs[0])
				return
			}
		}
		measured = (env.Now() - start) / uint64(rounds)
		ep.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return measured, k
}

func TestIPCEchoRegisterMessage(t *testing.T) {
	cycles, k := runEcho(t, SeL4, true, 0, 100)
	if k.Fastpaths == 0 {
		t.Fatal("no fastpaths taken for register-sized same-core IPC")
	}
	// Warm seL4 fastpath round-trip should be near the paper's 986 cycles.
	if cycles < 800 || cycles > 1200 {
		t.Fatalf("seL4 same-core roundtrip = %d cycles, want ~986", cycles)
	}
}

func TestIPCFlavorOrdering(t *testing.T) {
	sel4, _ := runEcho(t, SeL4, true, 0, 100)
	fiasco, _ := runEcho(t, Fiasco, true, 0, 100)
	zircon, _ := runEcho(t, Zircon, true, 0, 100)
	if !(sel4 < fiasco && fiasco < zircon) {
		t.Fatalf("flavor ordering violated: seL4 %d, Fiasco %d, Zircon %d", sel4, fiasco, zircon)
	}
}

func TestIPCCrossCoreUsesIPI(t *testing.T) {
	same, _ := runEcho(t, SeL4, true, 0, 50)
	cross, k := runEcho(t, SeL4, false, 0, 50)
	if k.Mach.IPICount == 0 {
		t.Fatal("cross-core IPC sent no IPIs")
	}
	if cross < same+2*hw.CostIPI {
		t.Fatalf("cross-core (%d) not dominated by 2 IPIs over same-core (%d)", cross, same)
	}
}

func TestIPCPayloadRoundTrip(t *testing.T) {
	// Byte-accurate payload transfer through simulated memory.
	eng, k, client, server := world(t, SeL4, false)
	ep := k.NewEndpoint("data")
	client.Grant(ep)

	srvBuf := server.Alloc(hw.PageSize)
	server.Spawn("srv", k.Mach.Cores[0], func(env *Env) {
		k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg {
			// Increment every payload byte.
			data := make([]byte, req.Len)
			env.Read(req.Buf, data, req.Len)
			for i := range data {
				data[i]++
			}
			env.Write(srvBuf, data, len(data))
			return Msg{Buf: srvBuf, Len: req.Len}
		})
	})

	cliBuf := client.Alloc(hw.PageSize)
	cliReply := client.Alloc(hw.PageSize)
	payload := []byte("abcdefghijklmnopqrstuvwxyz0123456789-this-exceeds-registers")
	client.Spawn("cli", k.Mach.Cores[0], func(env *Env) {
		env.Write(cliBuf, payload, len(payload))
		reply, err := env.Call(ep, Msg{Buf: cliBuf, Len: len(payload)}, cliReply)
		if err != nil {
			t.Error(err)
			return
		}
		if reply.Len != len(payload) {
			t.Errorf("reply len %d, want %d", reply.Len, len(payload))
		}
		got := make([]byte, reply.Len)
		env.Read(cliReply, got, reply.Len)
		want := make([]byte, len(payload))
		for i := range payload {
			want[i] = payload[i] + 1
		}
		if !bytes.Equal(got, want) {
			t.Errorf("payload corrupted: %q", got)
		}
		ep.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIPCCapabilityEnforced(t *testing.T) {
	eng, k, client, server := world(t, SeL4, false)
	ep := k.NewEndpoint("guarded")
	// Deliberately do NOT grant the client a capability.
	srvBuf := server.Alloc(hw.PageSize)
	server.Spawn("srv", k.Mach.Cores[0], func(env *Env) {
		k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg { return Msg{} })
	})
	client.Spawn("cli", k.Mach.Cores[1], func(env *Env) {
		_, err := env.Call(ep, Msg{}, 0)
		if !errors.Is(err, ErrNoCapability) {
			t.Errorf("expected ErrNoCapability, got %v", err)
		}
		ep.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIPCTimeout(t *testing.T) {
	eng, k, client, server := world(t, SeL4, false)
	ep := k.NewEndpoint("slow")
	client.Grant(ep)
	srvBuf := server.Alloc(hw.PageSize)
	server.Spawn("srv", k.Mach.Cores[1], func(env *Env) {
		k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg {
			env.Compute(10_000_000) // deliberately exceeds the timeout
			return Msg{}
		})
	})
	client.Spawn("cli", k.Mach.Cores[0], func(env *Env) {
		_, err := env.CallTimeout(ep, Msg{}, 0, 100_000)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("expected ErrTimeout, got %v", err)
		}
		ep.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKPTIAddsAddressSpaceSwitches(t *testing.T) {
	run := func(kpti bool) uint64 {
		eng, k, client, server := world(t, SeL4, kpti)
		ep := k.NewEndpoint("e")
		client.Grant(ep)
		srvBuf := server.Alloc(hw.PageSize)
		server.Spawn("srv", k.Mach.Cores[0], func(env *Env) {
			k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg { return Msg{} })
		})
		var cycles uint64
		client.Spawn("cli", k.Mach.Cores[0], func(env *Env) {
			for i := 0; i < 8; i++ {
				env.Call(ep, Msg{}, 0)
			}
			start := env.Now()
			for i := 0; i < 50; i++ {
				env.Call(ep, Msg{}, 0)
			}
			cycles = (env.Now() - start) / 50
			ep.Close()
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	base, kpti := run(false), run(true)
	// KPTI adds two CR3 writes per kernel crossing; a fastpath round trip
	// has four crossings (client in/out, server in/out), but entry+exit
	// pair per leg: 2 legs x 2 switches = 4 x 186 = 744 extra.
	delta := kpti - base
	if delta < 600 || delta > 900 {
		t.Fatalf("KPTI delta = %d cycles, want ~744", delta)
	}
}

func TestBreakdownAccounting(t *testing.T) {
	eng, k, client, server := world(t, SeL4, false)
	ep := k.NewEndpoint("e")
	client.Grant(ep)
	srvBuf := server.Alloc(hw.PageSize)
	server.Spawn("srv", k.Mach.Cores[0], func(env *Env) {
		k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg { return Msg{} })
	})
	client.Spawn("cli", k.Mach.Cores[0], func(env *Env) {
		for i := 0; i < 8; i++ {
			env.Call(ep, Msg{}, 0)
		}
		k.BD = NewBreakdown()
		for i := 0; i < 20; i++ {
			env.Call(ep, Msg{}, 0)
			k.BD.Rounds++
		}
		ep.Close()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	per := k.BD.PerRound()
	if per[CatSyscall] < 400 || per[CatSyscall] > 500 {
		t.Errorf("syscall component %.0f, want ~436 (2x(82+52+75))", per[CatSyscall])
	}
	if per[CatCtxSw] < 350 || per[CatCtxSw] > 400 {
		t.Errorf("context switch component %.0f, want ~372 (2x186)", per[CatCtxSw])
	}
	if per[CatIPI] != 0 {
		t.Errorf("same-core fastpath charged IPI cycles: %.0f", per[CatIPI])
	}
}

func TestProcessIsolation(t *testing.T) {
	// Two processes write different values at the same VA; each reads its
	// own back.
	eng, k, p1, p2 := world(t, SeL4, false)
	done := 0
	for i, p := range []*Process{p1, p2} {
		i, p := i, p
		va := p.Alloc(hw.PageSize)
		p.Spawn("w", k.Mach.Cores[i], func(env *Env) {
			val := []byte{byte(0xA0 + i)}
			env.Write(va, val, 1)
			env.Compute(1000)
			var got [1]byte
			env.Read(va, got[:], 1)
			if got[0] != byte(0xA0+i) {
				t.Errorf("process %d read %#x", i, got[0])
			}
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatal("not all writers ran")
	}
}

func TestMultiThreadedServer(t *testing.T) {
	// MT-Server configuration: one server thread per core; clients on each
	// core hit their local server thread via the fastpath.
	eng, k, client, server := world(t, SeL4, false)
	ep := k.NewEndpoint("mt")
	client.Grant(ep)
	cores := 4
	for c := 0; c < cores; c++ {
		buf := server.Alloc(hw.PageSize)
		server.Spawn("srv", k.Mach.Cores[c], func(env *Env) {
			k.Serve(env, ep, buf, func(env *Env, req Msg) Msg {
				return Msg{Regs: [4]uint64{req.Regs[0] * 2}}
			})
		})
	}
	doneCount := 0
	for c := 0; c < cores; c++ {
		client.Spawn("cli", k.Mach.Cores[c], func(env *Env) {
			for i := 0; i < 50; i++ {
				reply, err := env.Call(ep, Msg{Regs: [4]uint64{21}}, 0)
				if err != nil || reply.Regs[0] != 42 {
					t.Errorf("mt call: %v %v", reply, err)
					return
				}
			}
			doneCount++
			if doneCount == cores {
				ep.Close()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Mach.IPICount > 10 {
		t.Errorf("MT configuration sent %d IPIs; local fastpath expected", k.Mach.IPICount)
	}
}

func TestAllocZeroedAndDistinct(t *testing.T) {
	eng, k, p, _ := world(t, SeL4, false)
	a := p.Alloc(hw.PageSize)
	b := p.Alloc(hw.PageSize)
	if a == b {
		t.Fatal("allocations alias")
	}
	p.Spawn("t", k.Mach.Cores[0], func(env *Env) {
		var buf [8]byte
		env.Read(a, buf[:], 8)
		for _, v := range buf {
			if v != 0 {
				t.Error("fresh allocation not zeroed")
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMapCodeRoundTrip(t *testing.T) {
	_, _, p, _ := world(t, SeL4, false)
	code := []byte{0x90, 0x0f, 0x01, 0xd4, 0xc3}
	p.MapCode(code)
	got := p.ReadCode()
	if !bytes.Equal(got, code) {
		t.Fatalf("code %x, want %x", got, code)
	}
	code[1] = 0x90
	p.WriteCode(code)
	if !bytes.Equal(p.ReadCode(), code) {
		t.Fatal("WriteCode not visible")
	}
}

// TestIPCConcurrentPayloadsDoNotAlias is a regression test: two clients
// with in-flight payloads on the same endpoint (server busy, one request
// queued) must not corrupt each other through the kernel transfer buffer.
func TestIPCConcurrentPayloadsDoNotAlias(t *testing.T) {
	eng, k, _, server := world(t, Zircon, false) // Zircon copies every payload
	c1 := k.NewProcess("c1")
	c2 := k.NewProcess("c2")
	ep := k.NewEndpoint("e")
	c1.Grant(ep)
	c2.Grant(ep)

	srvBuf := server.Alloc(hw.PageSize)
	served := 0
	server.Spawn("srv", k.Mach.Cores[0], func(env *Env) {
		k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg {
			env.Compute(50_000) // stay busy so the second request queues
			data := make([]byte, req.Len)
			env.Read(req.Buf, data, req.Len)
			env.Write(srvBuf, data, len(data))
			served++
			if served == 2 {
				k.Eng.At(env.Now()+1, func() { ep.Close() })
			}
			return Msg{Buf: srvBuf, Len: req.Len}
		})
	})

	mkClient := func(p *Process, core int, fill byte) {
		buf := p.Alloc(hw.PageSize)
		reply := p.Alloc(hw.PageSize)
		p.Spawn("cli", k.Mach.Cores[core], func(env *Env) {
			payload := bytes.Repeat([]byte{fill}, 300)
			env.Write(buf, payload, len(payload))
			resp, err := env.Call(ep, Msg{Buf: buf, Len: len(payload)}, reply)
			if err != nil {
				t.Errorf("client %x: %v", fill, err)
				return
			}
			got := make([]byte, resp.Len)
			env.Read(reply, got, resp.Len)
			for _, b := range got {
				if b != fill {
					t.Errorf("client %x payload corrupted to %x (kernel buffer aliasing)", fill, b)
					return
				}
			}
		})
	}
	mkClient(c1, 1, 0xAA)
	mkClient(c2, 2, 0xBB)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTempMappingCorrectAndCheaper: L4's temporary-mapping option (§8.1)
// transfers long payloads byte-correct with one copy instead of two, and
// is measurably cheaper for large messages.
func TestTempMappingCorrectAndCheaper(t *testing.T) {
	run := func(tempMap bool, payload int) (uint64, bool) {
		eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 1 << 30}))
		k := New(Config{Flavor: SeL4, TempMapping: tempMap}, eng)
		client := k.NewProcess("client")
		server := k.NewProcess("server")
		ep := k.NewEndpoint("e")
		client.Grant(ep)
		srvBuf := server.Alloc(4 * hw.PageSize)
		server.Spawn("srv", k.Mach.Cores[0], func(env *Env) {
			k.Serve(env, ep, srvBuf, func(env *Env, req Msg) Msg {
				data := make([]byte, req.Len)
				env.Read(req.Buf, data, req.Len)
				for i := range data {
					data[i] ^= 0x5A
				}
				env.Write(srvBuf, data, len(data))
				return Msg{Buf: srvBuf, Len: req.Len}
			})
		})
		var cycles uint64
		ok := true
		cliBuf := client.Alloc(4 * hw.PageSize)
		cliReply := client.Alloc(4 * hw.PageSize)
		client.Spawn("cli", k.Mach.Cores[0], func(env *Env) {
			payloadBytes := bytes.Repeat([]byte{0x33}, payload)
			env.Write(cliBuf, payloadBytes, payload)
			for i := 0; i < 8; i++ { // warm
				env.Call(ep, Msg{Buf: cliBuf, Len: payload}, cliReply)
			}
			start := env.Now()
			const rounds = 32
			for i := 0; i < rounds; i++ {
				reply, err := env.Call(ep, Msg{Buf: cliBuf, Len: payload}, cliReply)
				if err != nil || reply.Len != payload {
					ok = false
					return
				}
			}
			cycles = (env.Now() - start) / rounds
			got := make([]byte, payload)
			env.Read(cliReply, got, payload)
			for _, b := range got {
				if b != 0x33^0x5A {
					ok = false
					return
				}
			}
			ep.Close()
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return cycles, ok
	}
	for _, payload := range []int{4096, 12288} {
		twoCopy, ok1 := run(false, payload)
		tempMap, ok2 := run(true, payload)
		if !ok1 || !ok2 {
			t.Fatalf("payload %d: correctness failed (2copy=%v tempmap=%v)", payload, ok1, ok2)
		}
		if tempMap >= twoCopy {
			t.Errorf("payload %d: temp mapping (%d cycles) not cheaper than two copies (%d)", payload, tempMap, twoCopy)
		}
	}
}
