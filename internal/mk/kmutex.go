package mk

import (
	"skybridge/internal/sim"
)

// KMutex is a kernel-backed (futex-style) mutex: the uncontended path is a
// user-mode atomic, but a contended acquire sleeps in the kernel and a
// contended release wakes the next waiter through the kernel — with a
// cross-core IPI when the waiter sleeps on another core. This is what makes
// lock handoff expensive on real microkernels, and it is the mechanism
// behind the negative scaling of Figures 9-11: the xv6fs big lock turns
// every file-system operation into a lock convoy once threads multiply.
type KMutex struct {
	Name string
	k    *Kernel

	owner   *sim.Thread
	waiters []*sim.Thread
	// freeAt carries hold intervals of already-simulated segments (same
	// role as in sim.Mutex).
	freeAt uint64

	// Stats.
	Acquisitions uint64
	Contended    uint64
	WaitCycles   uint64
	WakeIPIs     uint64
}

// NewKMutex creates a kernel-backed mutex on the kernel.
func (k *Kernel) NewKMutex(name string) *KMutex {
	return &KMutex{Name: name, k: k}
}

// Lock acquires the mutex. The fast path costs one atomic; the slow path
// enters the kernel, sleeps, and pays scheduler work on both edges.
func (m *KMutex) Lock(env *Env) {
	t := env.T
	t.Checkpoint()
	cpu := t.Core
	cpu.Tick(20) // user-mode CAS attempt
	m.Acquisitions++

	if m.owner == nil {
		if t.Now() < m.freeAt {
			// The lock was held during this time by an already-simulated
			// segment: contend and sleep until its release time.
			m.chargeSleep(env)
			m.Contended++
			m.WaitCycles += m.freeAt - t.Now()
			if m.freeAt > cpu.Clock {
				cpu.Clock = m.freeAt
			}
			m.chargeWakeup(env)
		}
		m.owner = t
		return
	}

	// Contended: sleep in the kernel until handoff.
	m.Contended++
	start := t.Now()
	m.chargeSleep(env)
	m.waiters = append(m.waiters, t)
	t.Park()
	m.WaitCycles += t.Now() - start
	m.chargeWakeup(env)
}

// chargeSleep is the kernel entry + schedule-away cost of blocking.
func (m *KMutex) chargeSleep(env *Env) {
	cpu := env.T.Core
	cpu.Syscall()
	cpu.Swapgs()
	m.k.kptiEnter(cpu)
	cpu.Tick(m.k.prof.schedCycles)
}

// chargeWakeup is the schedule-in + kernel exit cost after being woken.
func (m *KMutex) chargeWakeup(env *Env) {
	cpu := env.T.Core
	cpu.Tick(m.k.prof.schedCycles)
	m.k.kptiExit(cpu)
	cpu.Swapgs()
	cpu.Sysret()
	// Re-establish our address space: the core may have run others.
	env.enter()
}

// Unlock releases the mutex, waking the oldest waiter through the kernel
// (with an IPI if it sleeps on another core).
func (m *KMutex) Unlock(env *Env) {
	t := env.T
	if m.owner != t {
		panic("mk: KMutex.Unlock by non-owner " + t.Name)
	}
	cpu := t.Core
	cpu.Tick(20) // user-mode release
	if t.Now() > m.freeAt {
		m.freeAt = t.Now()
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	// Kernel wake path.
	cpu.Syscall()
	cpu.Swapgs()
	m.k.kptiEnter(cpu)
	cpu.Tick(m.k.prof.schedCycles)
	if next.Core.ID != cpu.ID {
		m.k.Mach.SendIPI(cpu.ID, next.Core.ID)
		m.WakeIPIs++
	}
	m.k.kptiExit(cpu)
	cpu.Swapgs()
	cpu.Sysret()
	m.k.Eng.Wake(next, t.Now(), nil)
}
