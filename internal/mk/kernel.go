// Package mk implements the Subkernel side of the reproduction: a
// microkernel framework (processes, virtual address spaces, capabilities,
// synchronous IPC endpoints) with three flavor profiles reproducing the IPC
// path structure of the kernels the paper evaluates:
//
//   - seL4: fastpath IPC for same-core register-sized messages with no
//     capability transfer; slowpath with IPI for cross-core IPC.
//   - Fiasco.OC: fastpath that additionally drains deferred requests (drq),
//     making it slower than seL4's.
//   - Zircon: no fastpath — every IPC enters the scheduler and performs two
//     message copies through a kernel buffer.
//
// Kernels execute on hw.CPU cores inside a sim.Engine: every syscall,
// SWAPGS, CR3 write, IPI, kernel code touch, and message copy is charged
// against the core's cycle clock and pollutes its caches and TLBs, which is
// what reproduces both the direct costs (Figure 7) and the indirect costs
// (Table 1, Figure 2) of kernel-mediated IPC.
package mk

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/sim"
)

// Flavor selects a microkernel IPC-path profile.
type Flavor int

// Kernel flavors.
const (
	SeL4 Flavor = iota
	Fiasco
	Zircon
)

// String implements fmt.Stringer.
func (f Flavor) String() string {
	switch f {
	case SeL4:
		return "seL4"
	case Fiasco:
		return "Fiasco.OC"
	case Zircon:
		return "Zircon"
	default:
		return fmt.Sprintf("Flavor(%d)", int(f))
	}
}

// profile holds the per-flavor IPC path structure. Text/data footprints are
// touched through the cache model (producing pollution and cold-start
// misses); residual cycles cover the warm-path kernel work that is not
// separately itemized. Residuals are calibrated so warm round-trip costs
// land on the paper's Figure 7 measurements (seL4 986, Fiasco 2717, Zircon
// 8157 cycles; cross-core 6764 / 8440 / 20099).
type profile struct {
	hasFastpath bool

	fastTextBytes int    // i-cache footprint of the fastpath, per one-way
	fastDataLines int    // d-cache lines of endpoint/TCB state touched
	fastResidual  uint64 // warm fastpath logic beyond itemized costs

	slowTextBytes int
	slowDataLines int
	slowResidual  uint64

	// schedCycles is charged when the IPC path enters the scheduler
	// (Zircon always; every kernel on the cross-core slowpath).
	schedCycles uint64
	// msgCopies is the number of copies each one-way message transfer
	// performs through the kernel (Zircon: 2 — sender buffer to kernel,
	// kernel to receiver buffer).
	msgCopies int
	// copySetup is the fixed per-copy overhead independent of length.
	copySetup uint64
	// crossExtra is additional per-IPI-send scheduling work on the
	// cross-core path (Zircon's remote-queue handling and preemption,
	// which make its cross-core IPC disproportionately expensive).
	crossExtra uint64
}

var profiles = map[Flavor]profile{
	SeL4: {
		hasFastpath:   true,
		fastTextBytes: 512, fastDataLines: 2, fastResidual: 58,
		slowTextBytes: 1024, slowDataLines: 4, slowResidual: 105,
		schedCycles: 250,
		msgCopies:   0, copySetup: 0,
	},
	Fiasco: {
		hasFastpath:   true,
		fastTextBytes: 1536, fastDataLines: 4, fastResidual: 850,
		slowTextBytes: 2048, slowDataLines: 6, slowResidual: 695,
		schedCycles: 300,
		msgCopies:   0, copySetup: 0,
	},
	Zircon: {
		hasFastpath:   false,
		fastTextBytes: 0, fastDataLines: 0, fastResidual: 0,
		slowTextBytes: 2048, slowDataLines: 8, slowResidual: 1273,
		schedCycles: 1100,
		msgCopies:   2, copySetup: 180,
		crossExtra: 3644,
	},
}

// Config configures a kernel instance.
type Config struct {
	Flavor Flavor
	// KPTI enables the Meltdown mitigation: the kernel runs on its own
	// page table, adding two CR3 writes per kernel crossing (§2.1.1).
	KPTI bool
	// TempMapping enables L4's temporary-mapping optimization for long
	// IPC (§8.1): the sender's buffer is mapped into the receiver's
	// address space and copied once, instead of twice through the kernel
	// buffer. Orthogonal to (and combinable with) SkyBridge.
	TempMapping bool
}

// VA layout constants.
const (
	// KernelBase is the bottom of the kernel half of every address space.
	KernelBase hw.VA = 0xffff_8000_0000_0000
	// UserTextBase is where process code pages are mapped.
	UserTextBase hw.VA = 0x40_0000
	// UserHeapBase is where process heap allocations start.
	UserHeapBase hw.VA = 0x1000_0000
	// UserStackTop is the top of the initial thread stack region.
	UserStackTop hw.VA = 0x7fff_f000_0000
	// KernelIdentityVA is the kernel mapping of the SkyBridge identity
	// page (§4.2): its guest-physical address is remapped per EPT, so the
	// kernel can read the identity of the process whose EPT view the core
	// currently runs under — the fix for the process-misidentification
	// problem.
	KernelIdentityVA hw.VA = 0xffff_9000_0000_0000
)

// Kernel is one microkernel instance (the Subkernel) running on a machine.
type Kernel struct {
	Cfg  Config
	Eng  *sim.Engine
	Mach *hw.Machine

	prof profile

	procs   []*Process
	nextPID int

	// Kernel footprint regions (identity frames mapped supervisor into
	// every process).
	textVA    hw.VA
	textGPA   hw.GPA
	textPages int
	dataVA    hw.VA
	dataGPA   hw.GPA
	dataPages int

	// Kernel heap: pages allocated after boot (endpoint buffers etc.),
	// mapped supervisor-only into every process.
	kheapNext hw.VA
	kheap     []kernelPage

	// endpoints lists created endpoints (window allocation).
	endpoints []*Endpoint

	// stagePool recycles staged-payload buffers (callCtx.reqStage/repStage)
	// by exact size. Host-side only: a staged buffer is exclusively owned by
	// its in-flight call from copy-in until the consuming copy-out, which
	// returns it here. Payload sizes repeat heavily (the same buffers are
	// shipped every round trip), so the pool turns the per-message
	// allocation — the hottest allocation site in the whole suite — into a
	// slice pop.
	stagePool map[int][][]byte

	// curProc tracks the process whose page table each core has installed.
	curProc []*Process

	// Hooks for the Rootkernel / SkyBridge integration (§4.2: "the process
	// creation part is also modified to call the EPT management part" and
	// "when the Subkernel decides to do a context switch ... it will
	// notify the Rootkernel to install the next process's EPTP list").
	OnProcessCreate func(p *Process)
	OnContextSwitch func(cpu *hw.CPU, next *Process)

	// Stats.
	IPCCalls  uint64
	Fastpaths uint64
	Slowpaths uint64

	// Adaptive-wakeup stats (wakeup.go): how waits resolved and what the
	// spinning cost.
	SpinWakes  uint64 // waits satisfied within the spin budget
	Parks      uint64 // waits that gave up spinning and HLTed
	LocalWakes uint64 // parked threads woken by a same-core waker
	IPIWakes   uint64 // parked threads woken by a cross-core IPI
	SpinCycles uint64 // total cycles spent polling before resolution

	// wakeSeq numbers waker->sleeper flow arrows in the trace. Allocated
	// only while the waker's core has a trace attached, so untraced runs
	// are untouched; per-kernel, so parallel bench workers stay
	// deterministic.
	wakeSeq uint64

	// BD, when non-nil, receives a cycle breakdown of kernel IPC work
	// (used to regenerate Figure 7).
	BD *Breakdown
}

// New boots a kernel of the given flavor on a fresh engine+machine.
func New(cfg Config, eng *sim.Engine) *Kernel {
	k := &Kernel{
		Cfg:  cfg,
		Eng:  eng,
		Mach: eng.Mach,
		prof: profiles[cfg.Flavor],
	}
	k.curProc = make([]*Process, len(k.Mach.Cores))
	k.Mach.Obs.Bind("mk.ipc_calls", &k.IPCCalls)
	k.Mach.Obs.Bind("mk.fastpaths", &k.Fastpaths)
	k.Mach.Obs.Bind("mk.slowpaths", &k.Slowpaths)
	k.Mach.Obs.Bind("mk.wake_spin", &k.SpinWakes)
	k.Mach.Obs.Bind("mk.wake_parks", &k.Parks)
	k.Mach.Obs.Bind("mk.wake_local", &k.LocalWakes)
	k.Mach.Obs.Bind("mk.wake_ipi", &k.IPIWakes)
	k.Mach.Obs.Bind("mk.wake_spin_cycles", &k.SpinCycles)

	// Allocate kernel text and data footprint frames.
	k.textPages = 4
	k.dataPages = 2
	k.textVA = KernelBase
	k.dataVA = KernelBase + hw.VA(k.textPages*hw.PageSize)
	textFrame := k.Mach.Mem.MustAllocFrame()
	for i := 1; i < k.textPages; i++ {
		k.Mach.Mem.MustAllocFrame()
	}
	dataFrame := k.Mach.Mem.MustAllocFrame()
	for i := 1; i < k.dataPages; i++ {
		k.Mach.Mem.MustAllocFrame()
	}
	// Frames are allocated top-down contiguously: recover the range bases.
	k.textGPA = hw.GPA(textFrame) - hw.GPA((k.textPages-1)*hw.PageSize)
	k.dataGPA = hw.GPA(dataFrame) - hw.GPA((k.dataPages-1)*hw.PageSize)
	k.kheapNext = k.dataVA + hw.VA(k.dataPages*hw.PageSize)
	return k
}

type kernelPage struct {
	va  hw.VA
	gpa hw.GPA
}

// allocKernelPage allocates one kernel-heap page, maps it supervisor-only
// into every existing process, and returns its kernel VA. Processes created
// later receive the mapping in mapKernelInto.
func (k *Kernel) allocKernelPage() hw.VA {
	frame := k.Mach.Mem.MustAllocFrame()
	va := k.kheapNext
	k.kheapNext += hw.PageSize
	kp := kernelPage{va: va, gpa: hw.GPA(frame)}
	k.kheap = append(k.kheap, kp)
	for _, p := range k.procs {
		if err := p.PT.Map(va, kp.gpa, hw.PTEWrite); err != nil {
			panic(err)
		}
	}
	return va
}

// mapKernelInto maps the kernel footprint into a process page table as
// supervisor-only pages (the user bit is clear, so ring 3 cannot touch it —
// and with KPTI these pages would live in a separate table entirely; the
// extra CR3 switches are charged on the IPC path instead of splitting the
// table, which has identical cost behaviour).
func (k *Kernel) mapKernelInto(pt *hw.PageTable) {
	if err := pt.MapRange(k.textVA, k.textGPA, k.textPages, hw.PTEWrite); err != nil {
		panic(err)
	}
	if err := pt.MapRange(k.dataVA, k.dataGPA, k.dataPages, hw.PTEWrite); err != nil {
		panic(err)
	}
	for _, kp := range k.kheap {
		if err := pt.Map(kp.va, kp.gpa, hw.PTEWrite); err != nil {
			panic(err)
		}
	}
}

// Procs returns the kernel's process list.
func (k *Kernel) Procs() []*Process { return k.procs }

// switchTo installs proc's address space on cpu, charging the CR3 write
// (and notifying the Rootkernel hook so it can install the EPTP list).
func (k *Kernel) switchTo(cpu *hw.CPU, proc *Process) {
	if k.curProc[cpu.ID] == proc {
		return
	}
	prevMode := cpu.Mode
	cpu.Mode = hw.ModeKernel
	if err := cpu.WriteCR3(proc.PT.Root, proc.PCID); err != nil {
		panic(err)
	}
	k.curProc[cpu.ID] = proc
	if k.OnContextSwitch != nil {
		k.OnContextSwitch(cpu, proc)
	}
	cpu.Mode = prevMode
}

// EnsureOn restores proc's address space on cpu if another process's
// context became resident. SkyBridge uses it when a thread resumes a
// direct-call chain after parking inside a server handler: threads of
// other processes may have run on the core meanwhile, and the chain's
// context process must own CR3 (and, via the context-switch hook, the
// EPTP list) before the next VMFUNC. No-op when proc is already current.
func (k *Kernel) EnsureOn(cpu *hw.CPU, proc *Process) { k.switchTo(cpu, proc) }

// kptiEnter/kptiExit charge the Meltdown-mitigation page-table switches.
func (k *Kernel) kptiEnter(cpu *hw.CPU) {
	if k.Cfg.KPTI {
		cpu.Clock += hw.CostWriteCR3
	}
}

func (k *Kernel) kptiExit(cpu *hw.CPU) {
	if k.Cfg.KPTI {
		cpu.Clock += hw.CostWriteCR3
	}
}

// CurrentIdentity reads the SkyBridge identity page through its kernel
// mapping, returning the PID of the process whose EPT view is active. It
// returns 0 when no identity page is mapped (no Rootkernel, or the process
// never registered with SkyBridge).
func (k *Kernel) CurrentIdentity(cpu *hw.CPU) uint64 {
	prevMode := cpu.Mode
	cpu.Mode = hw.ModeKernel
	defer func() { cpu.Mode = prevMode }()
	var buf [8]byte
	if err := cpu.ReadData(KernelIdentityVA, buf[:], 8); err != nil {
		return 0
	}
	var pid uint64
	for i := 7; i >= 0; i-- {
		pid = pid<<8 | uint64(buf[i])
	}
	return pid
}

// rawRead snapshots n bytes at va in p's address space via an uncharged
// software page walk (used by the temporary-mapping transfer path, where
// the charged traffic happens through the mapped window).
func (k *Kernel) rawRead(p *Process, va hw.VA, n int) []byte {
	out := k.getStage(n)
	for pos := 0; pos < n; {
		cur := va + hw.VA(pos)
		gpa, _, ok := p.PT.Walk(cur)
		if !ok {
			panic(fmt.Sprintf("mk: rawRead: %s va %#x unmapped", p.Name, uint64(cur)))
		}
		chunk := int(hw.PageSize - cur.PageOff())
		if chunk > n-pos {
			chunk = n - pos
		}
		k.Mach.Mem.Read(hw.HPA(gpa), out[pos:pos+chunk])
		pos += chunk
	}
	return out
}

// touchKernel models the kernel executing textBytes of IPC-path code and
// touching dataLines of kernel state, through the core's caches.
func (k *Kernel) touchKernel(cpu *hw.CPU, textBytes, dataLines int) {
	if textBytes > 0 {
		if err := cpu.TouchCode(k.textVA, textBytes); err != nil {
			panic(fmt.Sprintf("mk: kernel text touch failed: %v", err))
		}
	}
	for i := 0; i < dataLines; i++ {
		if err := cpu.ReadData(k.dataVA+hw.VA(i*hw.LineSize), nil, 8); err != nil {
			panic(fmt.Sprintf("mk: kernel data touch failed: %v", err))
		}
	}
}
