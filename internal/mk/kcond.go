package mk

import (
	"skybridge/internal/sim"
)

// KCond is a kernel-backed condition variable paired with a KMutex: Wait
// atomically releases the mutex and sleeps in the kernel; Broadcast wakes
// every sleeper through the kernel, paying one IPI per waiter parked on a
// remote core. It charges the same kernel-entry/schedule edges as KMutex
// contention, so sleeping on a condition costs what sleeping on a lock
// does. The fs group-commit log uses it to let transaction reservations
// wait for an in-flight commit without spinning.
type KCond struct {
	Name string
	k    *Kernel
	q    sim.WaitQueue

	// Stats.
	Waits    uint64
	WakeIPIs uint64
}

// NewKCond creates a kernel-backed condition variable on the kernel.
func (k *Kernel) NewKCond(name string) *KCond {
	return &KCond{Name: name, k: k}
}

// Wait releases m, sleeps until the next Broadcast, and reacquires m
// before returning. The caller must hold m.
func (c *KCond) Wait(env *Env, m *KMutex) {
	t := env.T
	if m.owner != t {
		panic("mk: KCond.Wait without holding " + m.Name)
	}
	c.Waits++
	// Release the mutex, then block: the unlock happens before the kernel
	// entry (futex-wait style), and the wait queue is FIFO, so a Broadcast
	// between unlock and park still finds us — the DES interleaves only at
	// park points, so the enqueue below is atomic with the unlock.
	m.Unlock(env)
	m.chargeSleep(env)
	c.q.Wait(t)
	m.chargeWakeup(env)
	m.Lock(env)
}

// Broadcast wakes every waiter through the kernel, sending an IPI to each
// waiter sleeping on a remote core. Callers typically hold the associated
// mutex, but need not.
func (c *KCond) Broadcast(env *Env) {
	t := env.T
	if c.q.Len() == 0 {
		return
	}
	cpu := t.Core
	// Kernel wake path, entered once for the whole broadcast.
	cpu.Syscall()
	cpu.Swapgs()
	c.k.kptiEnter(cpu)
	for c.q.Len() > 0 {
		cpu.Tick(c.k.prof.schedCycles)
		if th := c.q.TakeWhere(func(*sim.Thread) bool { return true }); th != nil {
			if th.Core.ID != cpu.ID {
				c.k.Mach.SendIPI(cpu.ID, th.Core.ID)
				c.WakeIPIs++
			}
			c.k.Eng.Wake(th, t.Now(), nil)
		}
	}
	c.k.kptiExit(cpu)
	cpu.Swapgs()
	cpu.Sysret()
}
