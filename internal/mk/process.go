package mk

import (
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/sim"
)

// Process is a user process: its own page table (virtual address space),
// capability table, and threads. SkyBridge-specific state (trampoline,
// calling keys, EPT bindings) is attached by internal/core via the Ext
// field.
type Process struct {
	PID  int
	Name string
	PT   *hw.PageTable
	PCID uint16

	kernel *Kernel

	heapNext  hw.VA
	stackNext hw.VA

	// Caps is the process's capability table: the endpoints it may invoke.
	Caps map[*Endpoint]bool

	// CodeBase/CodeSize describe the process's mapped text, which the
	// SkyBridge registration path scans and rewrites.
	CodeBase hw.VA
	CodeSize int

	// Ext carries SkyBridge per-process state (owned by internal/core).
	Ext any

	threads int
}

// NewProcess creates a process with the kernel footprint mapped.
func (k *Kernel) NewProcess(name string) *Process {
	k.nextPID++
	p := &Process{
		PID:       k.nextPID,
		Name:      name,
		PT:        hw.NewPageTable(k.Mach.Mem),
		PCID:      uint16(k.nextPID),
		kernel:    k,
		heapNext:  UserHeapBase,
		stackNext: UserStackTop,
		Caps:      make(map[*Endpoint]bool),
	}
	k.mapKernelInto(p.PT)
	k.procs = append(k.procs, p)
	if k.OnProcessCreate != nil {
		k.OnProcessCreate(p)
	}
	return p
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kernel }

// Alloc maps n fresh zeroed bytes (page-granular) into the process heap and
// returns their base VA.
func (p *Process) Alloc(n int) hw.VA {
	pages := (n + hw.PageSize - 1) / hw.PageSize
	base := p.heapNext
	for i := 0; i < pages; i++ {
		frame := p.kernel.Mach.Mem.MustAllocFrame()
		if err := p.PT.Map(p.heapNext, hw.GPA(frame), hw.PTEWrite|hw.PTEUser); err != nil {
			panic(err)
		}
		p.heapNext += hw.PageSize
	}
	return base
}

// AllocStack maps a stack region of n bytes and returns its top VA.
func (p *Process) AllocStack(n int) hw.VA {
	pages := (n + hw.PageSize - 1) / hw.PageSize
	top := p.stackNext
	for i := 1; i <= pages; i++ {
		frame := p.kernel.Mach.Mem.MustAllocFrame()
		if err := p.PT.Map(top-hw.VA(i*hw.PageSize), hw.GPA(frame), hw.PTEWrite|hw.PTEUser); err != nil {
			panic(err)
		}
	}
	p.stackNext -= hw.VA((pages + 8) * hw.PageSize) // guard gap
	return top
}

// MapCode maps code bytes at UserTextBase with user+exec permissions and
// records the text range.
func (p *Process) MapCode(code []byte) hw.VA {
	pages := (len(code) + hw.PageSize - 1) / hw.PageSize
	if pages == 0 {
		pages = 1
	}
	for i := 0; i < pages; i++ {
		frame := p.kernel.Mach.Mem.MustAllocFrame()
		if err := p.PT.Map(UserTextBase+hw.VA(i*hw.PageSize), hw.GPA(frame), hw.PTEUser); err != nil {
			panic(err)
		}
		end := (i + 1) * hw.PageSize
		if end > len(code) {
			end = len(code)
		}
		if i*hw.PageSize < len(code) {
			p.kernel.Mach.Mem.Write(frame, code[i*hw.PageSize:end])
		}
	}
	p.CodeBase = UserTextBase
	p.CodeSize = len(code)
	return UserTextBase
}

// ReadCode reads the process's mapped text back out (kernel-side, uncharged:
// the scanner runs at registration time, off the IPC path).
func (p *Process) ReadCode() []byte {
	buf := make([]byte, p.CodeSize)
	for off := 0; off < p.CodeSize; off += hw.PageSize {
		gpa, _, ok := p.PT.Walk(p.CodeBase + hw.VA(off))
		if !ok {
			panic("mk: unmapped code page")
		}
		end := off + hw.PageSize
		if end > p.CodeSize {
			end = p.CodeSize
		}
		p.kernel.Mach.Mem.Read(hw.HPA(gpa), buf[off:end])
	}
	return buf
}

// WriteCode overwrites the process's text in place (used by the rewriter).
func (p *Process) WriteCode(code []byte) {
	if len(code) != p.CodeSize {
		panic("mk: WriteCode length mismatch")
	}
	for off := 0; off < len(code); off += hw.PageSize {
		gpa, _, ok := p.PT.Walk(p.CodeBase + hw.VA(off))
		if !ok {
			panic("mk: unmapped code page")
		}
		end := off + hw.PageSize
		if end > len(code) {
			end = len(code)
		}
		p.kernel.Mach.Mem.Write(hw.HPA(gpa), code[off:end])
	}
}

// Grant adds an endpoint capability to the process.
func (p *Process) Grant(ep *Endpoint) { p.Caps[ep] = true }

// MapFrames maps existing frames (e.g. a SkyBridge shared buffer) into the
// process heap and returns the base VA.
func (p *Process) MapFrames(frames []hw.GPA, flags hw.PTFlags) hw.VA {
	base := p.heapNext
	for _, f := range frames {
		if err := p.PT.Map(p.heapNext, f, flags); err != nil {
			panic(err)
		}
		p.heapNext += hw.PageSize
	}
	return base
}

// MapAt maps existing frames at a fixed VA (trampoline and rewriting pages
// live at architected addresses).
func (p *Process) MapAt(va hw.VA, frames []hw.GPA, flags hw.PTFlags) {
	for i, f := range frames {
		if err := p.PT.Map(va+hw.VA(i*hw.PageSize), f, flags); err != nil {
			panic(err)
		}
	}
}

// Env is the execution context handed to simulated application code: a sim
// thread running inside a process on a specific core. All memory operations
// are charged through the hardware model under the process's address space.
type Env struct {
	T *sim.Thread
	P *Process
	K *Kernel

	// direct marks an Env created by a SkyBridge direct call: the thread
	// reached P's address space by switching EPTs in user mode, CR3 (and
	// the kernel's notion of the current process) still belong to the
	// original client, and memory operations must not trigger a kernel
	// context switch.
	direct bool
}

// DirectEnv derives the Env a SkyBridge trampoline hands to a server
// handler: same thread and core, server process, no kernel involvement.
func (e *Env) DirectEnv(p *Process) *Env {
	return &Env{T: e.T, P: p, K: e.K, direct: true}
}

// IsDirect reports whether this Env runs under a SkyBridge EPT switch.
func (e *Env) IsDirect() bool { return e.direct }

// Spawn starts a thread of process p on the given core.
func (p *Process) Spawn(name string, core *hw.CPU, body func(env *Env)) *sim.Thread {
	p.threads++
	return p.kernel.Eng.Go(fmt.Sprintf("%s/%s", p.Name, name), core, func(t *sim.Thread) {
		env := &Env{T: t, P: p, K: p.kernel}
		env.enter()
		body(env)
	})
}

// Enter re-establishes this environment's address space on the core,
// charging a context switch if another process's context was resident
// (e.g. after the thread was parked and other threads ran on the core).
func (e *Env) Enter() { e.enter() }

// enter makes sure the core runs this process's address space in user mode
// (charging a context switch if another process was resident).
func (e *Env) enter() {
	if !e.direct {
		e.K.switchTo(e.T.Core, e.P)
	}
	e.T.Core.Mode = hw.ModeUser
}

// Compute charges n cycles of pure user computation.
func (e *Env) Compute(n uint64) { e.T.Core.Tick(n) }

// Read performs a charged user-mode read of n bytes at va.
func (e *Env) Read(va hw.VA, buf []byte, n int) {
	e.enter()
	if err := e.T.Core.ReadData(va, buf, n); err != nil {
		panic(fmt.Sprintf("mk: %s: read %#x: %v", e.T.Name, uint64(va), err))
	}
}

// Write performs a charged user-mode write of n bytes at va.
func (e *Env) Write(va hw.VA, buf []byte, n int) {
	e.enter()
	if err := e.T.Core.WriteData(va, buf, n); err != nil {
		panic(fmt.Sprintf("mk: %s: write %#x: %v", e.T.Name, uint64(va), err))
	}
}

// ExecCode models executing n bytes of code at va: charged instruction
// fetches through the i-TLB and L1I. Applications use it to express their
// per-operation code footprint (each process carries its own copy of its
// runtime, which is why multi-process pipelines pressure the i-cache in
// ways a single-address-space baseline does not — Table 1).
func (e *Env) ExecCode(va hw.VA, n int) {
	e.enter()
	if err := e.T.Core.TouchCode(va, n); err != nil {
		panic(fmt.Sprintf("mk: %s: exec %#x: %v", e.T.Name, uint64(va), err))
	}
}

// Now returns the thread's current cycle time.
func (e *Env) Now() uint64 { return e.T.Now() }

// Sleep blocks the thread for n cycles without charging the core: the
// thread parks and a timer event resumes it, so other threads sharing the
// core run in the gap (think time in a closed-loop client is idle, not
// busy-wait). The wake is pushed before the park on the same goroutine,
// so the thread is parked by the time the event can dispatch.
func (e *Env) Sleep(n uint64) {
	t := e.T
	t.Engine().Wake(t, t.Core.Clock+n, nil)
	t.Park()
}
