package mk

import (
	"testing"

	"skybridge/internal/hw"
)

func TestKMutexUncontendedIsCheap(t *testing.T) {
	eng, k, p, _ := world(t, SeL4, false)
	m := k.NewKMutex("m")
	p.Spawn("t", k.Mach.Cores[0], func(env *Env) {
		start := env.Now()
		m.Lock(env)
		m.Unlock(env)
		elapsed := env.Now() - start
		// Fast path: two user-mode atomics, no kernel entry.
		if elapsed > 100 {
			t.Errorf("uncontended lock/unlock cost %d cycles; fast path expected", elapsed)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Mach.IPICount != 0 {
		t.Error("uncontended mutex sent IPIs")
	}
}

func TestKMutexContendedHandoffChargesKernelAndIPI(t *testing.T) {
	eng, k, p, p2 := world(t, SeL4, false)
	m := k.NewKMutex("m")
	p.Spawn("holder", k.Mach.Cores[0], func(env *Env) {
		m.Lock(env)
		// Yield periodically so the waiter's claim is processed while the
		// lock is genuinely held (parking it in the kernel).
		for i := 0; i < 10; i++ {
			env.Compute(5_000)
			env.T.Checkpoint()
		}
		m.Unlock(env)
	})
	var waiterElapsed uint64
	p2.Spawn("waiter", k.Mach.Cores[1], func(env *Env) {
		env.Compute(100) // arrive second
		start := env.Now()
		m.Lock(env)
		waiterElapsed = env.Now() - start
		m.Unlock(env)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Contended != 1 {
		t.Fatalf("contended = %d, want 1", m.Contended)
	}
	if m.WakeIPIs != 1 || k.Mach.IPICount == 0 {
		t.Errorf("cross-core handoff sent %d IPIs", m.WakeIPIs)
	}
	// The waiter's wait spans the rest of the holder's critical section
	// plus kernel sleep/wake costs.
	if waiterElapsed < 45_000 {
		t.Errorf("waiter waited only %d cycles", waiterElapsed)
	}
	if waiterElapsed < 45_000+hw.CostIPI {
		t.Errorf("handoff did not include the IPI cost: %d", waiterElapsed)
	}
}

func TestKMutexMutualExclusion(t *testing.T) {
	eng, k, _, _ := world(t, SeL4, false)
	m := k.NewKMutex("m")
	inside := 0
	for i := 0; i < 4; i++ {
		p := k.NewProcess("w")
		p.Spawn("w", k.Mach.Cores[i%len(k.Mach.Cores)], func(env *Env) {
			for j := 0; j < 5; j++ {
				m.Lock(env)
				if inside != 0 {
					t.Error("mutual exclusion violated")
				}
				inside++
				env.Compute(1000)
				inside--
				m.Unlock(env)
				env.Compute(500)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Acquisitions != 20 {
		t.Errorf("acquisitions = %d, want 20", m.Acquisitions)
	}
}

func TestKMutexSameCoreHandoffNoIPI(t *testing.T) {
	eng, k, p, p2 := world(t, SeL4, false)
	m := k.NewKMutex("m")
	core := k.Mach.Cores[0]
	p.Spawn("a", core, func(env *Env) {
		m.Lock(env)
		env.T.Checkpoint() // let b queue behind us
		env.Compute(10_000)
		m.Unlock(env)
	})
	p2.Spawn("b", core, func(env *Env) {
		env.Compute(10)
		m.Lock(env)
		m.Unlock(env)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.WakeIPIs != 0 {
		t.Errorf("same-core handoff sent %d IPIs", m.WakeIPIs)
	}
}
