package mk

// Gate parks a drain core taken out of service by a scale-down
// decision. The parked thread sleeps on the calibrated AdaptiveWait
// HLT path (a tiny spin budget: the decision to park was already made,
// so the thread goes to HLT almost immediately) and is IPI-woken by
// the controller when load crosses back over the high-water mark.
// ParkedCycles accumulates time spent HLTed so experiments can report
// busy-core-cycles alongside raw throughput.
type Gate struct {
	parker Parker
	open   bool

	Parks        uint64 // scale-down parks entered
	Unparks      uint64 // controller wakes delivered
	ParkedCycles uint64 // cycles spent shut, measured on the sleeper's clock
}

// NewGate returns an open gate (core in service).
func NewGate() *Gate { return &Gate{open: true} }

// Open reports whether the core is in service.
func (g *Gate) Open() bool { return g.open }

// Shut marks the core out of service; the owning thread must call Wait
// next. Host-side state only — callers hold the simulator's one-thread
// baton, so no atomics are needed.
func (g *Gate) Shut() {
	if g.open {
		g.open = false
		g.Parks++
	}
}

// Wait blocks the calling thread until the gate reopens (or done turns
// true, e.g. frontend shutdown). On return the thread re-establishes
// its address space on the core via Kernel.EnsureOn — the core may have
// run nothing, or anything, while the gate was shut.
func (g *Gate) Wait(e *Env, pol WakePolicy, done func() bool) {
	t0 := e.T.Core.Clock
	for !g.open && (done == nil || !done()) {
		e.AdaptiveWait(&g.parker, pol, func() bool {
			return g.open || (done != nil && done())
		}, nil, nil)
	}
	g.ParkedCycles += e.T.Core.Clock - t0
	e.K.EnsureOn(e.T.Core, e.P)
}

// Unpark reopens the gate and wakes the parked thread, paying an IPI
// if the controller runs on a different core (the common case).
func (g *Gate) Unpark(e *Env) {
	if g.open {
		return
	}
	g.open = true
	g.Unparks++
	e.K.WakeParker(e.T.Core, &g.parker)
}

// Close wakes a parked thread for shutdown without reopening the gate;
// pair it with a done predicate passed to Wait.
func (g *Gate) Close(e *Env) {
	e.K.CloseParker(e.T.Core, &g.parker)
}
