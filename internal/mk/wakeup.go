package mk

import (
	"skybridge/internal/hw"
	"skybridge/internal/obs"
	"skybridge/internal/sim"
)

// Adaptive wakeups: the synchronization layer under SkyBridge's
// asynchronous rings. A waiter (a server poll loop with an empty
// submission ring, a client with no completions to reap) first spins,
// polling its ready condition through charged shared-buffer reads; once
// the spin budget is exhausted it publishes an "I am going to sleep" flag,
// re-checks the condition (Dekker-style, so a wakeup posted between the
// flag write and the park is never lost), and HLTs. The other side, after
// producing work, reads the flag and — only if it is set — kicks the
// sleeper: an IPI when the sleeper lives on another core, a plain
// scheduler wake on the same core.
//
// The spin budget is calibrated from the Table 2 cost model: parking
// earlier than the cost of the IPI + interrupt delivery it forces the
// waker and sleeper to pay (1913 + 600 cycles) can never win, so the
// default budget spins exactly that long before sleeping.
const (
	// DefaultSpinBudget is the calibrated spin-before-HLT window:
	// hw.CostIPI + hw.CostInterrupt cycles (the price of being woken the
	// hard way).
	DefaultSpinBudget = hw.CostIPI + hw.CostInterrupt
	// DefaultSpinStep is the busy-poll loop body charge between ready()
	// probes (compare + branch + pause).
	DefaultSpinStep = 32
)

// WakePolicy parameterizes AdaptiveWait. The zero value means defaults.
type WakePolicy struct {
	SpinBudget uint64 // cycles to spin before parking (0 = DefaultSpinBudget)
	SpinStep   uint64 // cycles charged per poll iteration (0 = DefaultSpinStep)
}

func (p WakePolicy) withDefaults() WakePolicy {
	if p.SpinBudget == 0 {
		p.SpinBudget = DefaultSpinBudget
	}
	if p.SpinStep == 0 {
		p.SpinStep = DefaultSpinStep
	}
	return p
}

// WakeKind says how a waiter came back from AdaptiveWait.
type WakeKind int

// Wake kinds.
const (
	// WokeSpin: the condition turned true within the spin budget; the
	// thread never parked.
	WokeSpin WakeKind = iota
	// WokeLocal: parked and woken by a same-core waker (no IPI needed —
	// the cores share a scheduler queue).
	WokeLocal
	// WokeIPI: parked and woken by a cross-core IPI (the waker paid
	// hw.CostIPI, the sleeper pays hw.CostInterrupt on resume).
	WokeIPI
	// WokeClose: parked and woken by shutdown bookkeeping (no hardware
	// event is modeled; the waiter should observe its closed flag).
	WokeClose
)

// WaitStats decomposes how one AdaptiveWait resolved: the cycles spent
// spinning before the decision, the cycles parked (zero on a spin exit),
// and the wakeup-delivery cost paid on resume (interrupt dispatch on an
// IPI wake). Spin + Parked + Delivery is exactly the wait's duration on
// the waiter's clock.
type WaitStats struct {
	Kind     WakeKind
	Spin     uint64
	Parked   uint64
	Delivery uint64
}

// Parker is one adaptive-wait sleep slot: at most one thread parks on it
// at a time (the SPSC rings have exactly one server poll thread and one
// client per ring side).
type Parker struct {
	wq sim.WaitQueue

	// Last describes how the most recent AdaptiveWait on this parker
	// resolved. Single-waiter (SPSC) use makes a single slot sufficient;
	// callers attributing wait cycles read it immediately after the wait.
	Last WaitStats

	// flowID carries the waker-minted wake-flow arrow to the sleeper,
	// which terminates it on its own track after resuming. Set only while
	// tracing is attached.
	flowID uint64
}

// Waiting reports whether a thread is parked here.
func (p *Parker) Waiting() bool { return p.wq.Len() > 0 }

// AdaptiveWait blocks the environment's thread until ready() returns
// true, spinning first and parking after pol.SpinBudget cycles. arm is
// called (with the thread still runnable) just before the final ready
// re-check and park — it must publish the wake-me flag the eventual waker
// reads; disarm clears it after the wait ends. Both may be nil when the
// waker kicks unconditionally. The arm -> re-check -> park sequence
// contains no Checkpoint, so no producer can slip between the flag
// becoming visible and the thread parking: any wakeup is either seen by
// the re-check or delivered to the parked thread.
func (e *Env) AdaptiveWait(p *Parker, pol WakePolicy, ready func() bool, arm, disarm func()) WakeKind {
	pol = pol.withDefaults()
	k, cpu := e.K, e.T.Core
	start := cpu.Clock
	for {
		e.T.Checkpoint()
		if ready() {
			k.SpinWakes++
			k.SpinCycles += cpu.Clock - start
			p.Last = WaitStats{Kind: WokeSpin, Spin: cpu.Clock - start}
			return WokeSpin
		}
		if cpu.Clock-start >= pol.SpinBudget {
			break
		}
		e.Compute(pol.SpinStep)
	}
	if arm != nil {
		arm()
	}
	if ready() {
		// The condition turned true while we were arming: take the spin
		// exit rather than a wakeup that may never come.
		if disarm != nil {
			disarm()
		}
		k.SpinWakes++
		k.SpinCycles += cpu.Clock - start
		p.Last = WaitStats{Kind: WokeSpin, Spin: cpu.Clock - start}
		return WokeSpin
	}
	k.Parks++
	k.SpinCycles += cpu.Clock - start
	tPark := cpu.Clock
	kind, _ := p.wq.Wait(e.T).(WakeKind)
	tResume := cpu.Clock
	if kind == WokeIPI {
		// The sleeper pays interrupt delivery and dispatch on its core.
		if err := cpu.Interrupt(); err != nil {
			panic(err)
		}
	}
	if disarm != nil {
		disarm()
	}
	p.Last = WaitStats{
		Kind:     kind,
		Spin:     tPark - start,
		Parked:   tResume - tPark,
		Delivery: cpu.Clock - tResume,
	}
	if fid := p.flowID; fid != 0 {
		p.flowID = 0
		cpu.Trace.FlowEnd(cpu.Clock, fid, "flow.wake", "flow")
	}
	return kind
}

// WakeParker wakes the thread parked on p (if any), charging an IPI to
// the calling core when the sleeper lives on a different core. It reports
// whether a thread was actually woken — false means nobody was parked
// (the would-be sleeper is still spinning and will see the condition
// itself).
func (k *Kernel) WakeParker(cpu *hw.CPU, p *Parker) bool {
	return k.wakeParker(cpu, p, false)
}

// CloseParker is the shutdown variant of WakeParker: the sleeper comes
// back with WokeClose and no IPI or interrupt is charged (teardown
// bookkeeping, not a modeled hardware event).
func (k *Kernel) CloseParker(cpu *hw.CPU, p *Parker) bool {
	return k.wakeParker(cpu, p, true)
}

func (k *Kernel) wakeParker(cpu *hw.CPU, p *Parker, closing bool) bool {
	th := p.wq.TakeWhere(func(*sim.Thread) bool { return true })
	if th == nil {
		return false
	}
	// Mint a waker->sleeper flow arrow so the trace shows who kicked whom
	// across cores. Only when the waker's core is traced: untraced runs
	// skip the sequence allocation entirely.
	if cpu.Trace != nil {
		k.wakeSeq++
		fid := obs.FlowWake | k.wakeSeq
		p.flowID = fid
		cpu.Trace.FlowStart(cpu.Clock, fid, "flow.wake", "flow")
	}
	kind := WokeLocal
	switch {
	case closing:
		kind = WokeClose
	case th.Core.ID != cpu.ID:
		k.Mach.SendIPI(cpu.ID, th.Core.ID)
		kind = WokeIPI
		k.IPIWakes++
	default:
		k.LocalWakes++
	}
	k.Eng.Wake(th, cpu.Clock, kind)
	return true
}
