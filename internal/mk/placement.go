package mk

import "skybridge/internal/hw"

// Placement deterministically assigns logical indices — server shards,
// client threads — to machine cores, round-robin modulo the core count.
// The sharded serving stack places shard i's server thread on Core(i) so
// every core owns one shard of each service, and benchmarks use the same
// mapping for client spread and for the paper's pinned cross-core server
// configurations, instead of hand-picking core numbers per experiment.
type Placement struct {
	cores []*hw.CPU
}

// Placement returns the kernel's core placement map.
func (k *Kernel) Placement() *Placement { return &Placement{cores: k.Mach.Cores} }

// N returns the number of cores placed over.
func (p *Placement) N() int { return len(p.cores) }

// Core returns the core owning logical index i (round-robin).
func (p *Placement) Core(i int) *hw.CPU { return p.cores[i%len(p.cores)] }

// Spread returns the cores for n logical indices, one per index.
func (p *Placement) Spread(n int) []*hw.CPU {
	out := make([]*hw.CPU, n)
	for i := range out {
		out[i] = p.Core(i)
	}
	return out
}
