package mk

import (
	"errors"
	"fmt"

	"skybridge/internal/hw"
	"skybridge/internal/obs"
	"skybridge/internal/sim"
)

// Breakdown accumulates IPC path cycles by component, regenerating the
// stacked bars of Figure 7.
type Breakdown struct {
	Cats   map[string]uint64
	Rounds uint64
}

// Breakdown categories (Figure 7 legend).
const (
	CatVMFUNC  = "VMFUNC"
	CatSyscall = "SYSCALL/SYSRET"
	CatCtxSw   = "context switch"
	CatIPI     = "IPI"
	CatCopy    = "message copy"
	CatSched   = "schedule"
	CatOther   = "others"
)

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown { return &Breakdown{Cats: make(map[string]uint64)} }

// Add records cycles against a category.
func (b *Breakdown) Add(cat string, cyc uint64) {
	if b != nil {
		b.Cats[cat] += cyc
	}
}

// Total sums all categories.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b.Cats {
		t += v
	}
	return t
}

// PerRound returns the per-round-trip cycles of each category.
func (b *Breakdown) PerRound() map[string]float64 {
	out := make(map[string]float64, len(b.Cats))
	if b.Rounds == 0 {
		return out
	}
	for k, v := range b.Cats {
		out[k] = float64(v) / float64(b.Rounds)
	}
	return out
}

// record measures the cycles fn spends on cpu and attributes them.
func (k *Kernel) record(cpu *hw.CPU, cat string, fn func()) {
	if k.BD == nil {
		fn()
		return
	}
	t0 := cpu.Clock
	fn()
	k.BD.Add(cat, cpu.Clock-t0)
}

// ErrNoCapability is returned when a process invokes an endpoint it holds
// no capability for.
var ErrNoCapability = errors.New("mk: no capability for endpoint")

// ErrTimeout is returned by CallTimeout when the server does not reply in
// time (the DoS-defense mechanism of §7).
var ErrTimeout = errors.New("mk: ipc call timed out")

// regMsgBytes is the payload size that fits in registers (seL4 fastpath
// condition: "the IPC message fits in CPU registers").
const regMsgBytes = 32

// Msg is an IPC message: a register part plus an optional memory payload
// located in the *sender's* address space at Buf. Payload bytes really move
// through simulated memory, so corruption bugs are observable.
type Msg struct {
	Regs [4]uint64
	Buf  hw.VA
	Len  int
}

// Endpoint is a synchronous IPC endpoint with server threads that park in
// Recv and clients that Call.
type Endpoint struct {
	Name string
	k    *Kernel

	recvQ   sim.WaitQueue
	pending []*callCtx
	closed  bool

	// kbuf is the kernel-side transfer buffer for long messages.
	kbufVA  hw.VA
	kbufLen int
	// winVA is the endpoint's receiver-side temporary-mapping window.
	winVA hw.VA

	// Calls counts client invocations.
	Calls uint64
}

// callCtx tracks one in-flight call. The call and reply legs are
// independently fast or slow, as in seL4 (a register-sized request can
// receive a long reply via the slow reply path).
type callCtx struct {
	req       Msg
	reply     Msg
	client    *sim.Thread
	clientP   *Process
	serverP   *Process // set at reply time (temporary-mapping reply leg)
	replyBuf  hw.VA
	fastCall  bool
	crossCall bool
	fastReply bool
	crossRep  bool
	timedOut  bool
	done      bool
	err       error

	// reqInline/repInline carry register-sized payloads (<= regMsgBytes),
	// which travel in CPU registers rather than through the kernel buffer.
	reqInline []byte
	repInline []byte
	// reqStage/repStage hold copied payloads while in flight. The cache
	// traffic of the kernel transfer buffer is charged via copyIn/copyOut;
	// the bytes are staged per message (as a real kernel's per-message
	// buffers would) so concurrent in-flight messages cannot alias.
	reqStage []byte
	repStage []byte
}

// NewEndpoint creates an endpoint on the kernel.
func (k *Kernel) NewEndpoint(name string) *Endpoint {
	ep := &Endpoint{Name: name, k: k, kbufLen: hw.PageSize}
	ep.kbufVA = k.allocKernelPage()
	// Each endpoint gets its own temporary-mapping window (16 pages).
	ep.winVA = tempWindowVA + hw.VA(len(k.endpoints)*16*hw.PageSize)
	k.endpoints = append(k.endpoints, ep)
	return ep
}

// Close shuts the endpoint down: parked servers wake with nil and exit
// their serve loops.
func (ep *Endpoint) Close() {
	ep.closed = true
	for ep.recvQ.Len() > 0 {
		ep.recvQ.WakeOne(ep.k.Eng, 0, nil)
	}
}

// takeWaiter removes and returns a parked server thread, preferring one on
// the given core; anyOK allows falling back to any core.
func (ep *Endpoint) takeWaiter(coreID int, anyOK bool) *sim.Thread {
	if th := ep.recvQ.TakeWhere(func(t *sim.Thread) bool { return t.Core.ID == coreID }); th != nil {
		return th
	}
	if anyOK {
		return ep.recvQ.TakeWhere(func(t *sim.Thread) bool { return true })
	}
	return nil
}

// getStage returns an n-byte staging buffer, reusing a pooled one when a
// previous call of the same payload size has completed. Callers overwrite
// the full length, so recycled contents never leak between messages.
func (k *Kernel) getStage(n int) []byte {
	if s := k.stagePool[n]; len(s) > 0 {
		buf := s[len(s)-1]
		k.stagePool[n] = s[:len(s)-1]
		return buf
	}
	return make([]byte, n)
}

// putStage returns a consumed staging buffer to the pool. buf must not be
// referenced by any in-flight call afterwards.
func (k *Kernel) putStage(buf []byte) {
	if buf == nil {
		return
	}
	if k.stagePool == nil {
		k.stagePool = make(map[int][][]byte)
	}
	k.stagePool[len(buf)] = append(k.stagePool[len(buf)], buf)
}

// copyIn moves a payload from the current address space through the kernel
// transfer buffer, charging the copy, and returns the staged bytes. Chunks
// beyond the buffer wrap (the real kernel loops the same way).
func (ep *Endpoint) copyIn(cpu *hw.CPU, buf hw.VA, n int) []byte {
	k := ep.k
	cpu.Tick(k.prof.copySetup)
	staged := k.getStage(n)
	for off := 0; off < n; off += ep.kbufLen {
		chunk := min(ep.kbufLen, n-off)
		if err := cpu.ReadData(buf+hw.VA(off), staged[off:off+chunk], chunk); err != nil {
			panic(fmt.Sprintf("mk: ipc copyIn: %v", err))
		}
		prevMode := cpu.Mode
		cpu.Mode = hw.ModeKernel
		if err := cpu.WriteData(ep.kbufVA, staged[off:off+chunk], chunk); err != nil {
			panic(fmt.Sprintf("mk: ipc copyIn kbuf: %v", err))
		}
		cpu.Mode = prevMode
	}
	return staged
}

// copyOut moves staged payload bytes through the kernel transfer buffer
// into the current address space, charging the copy.
func (ep *Endpoint) copyOut(cpu *hw.CPU, buf hw.VA, staged []byte) {
	k := ep.k
	n := len(staged)
	cpu.Tick(k.prof.copySetup)
	for off := 0; off < n; off += ep.kbufLen {
		chunk := min(ep.kbufLen, n-off)
		prevMode := cpu.Mode
		cpu.Mode = hw.ModeKernel
		if err := cpu.ReadData(ep.kbufVA, nil, chunk); err != nil {
			panic(fmt.Sprintf("mk: ipc copyOut kbuf: %v", err))
		}
		cpu.Mode = prevMode
		if err := cpu.WriteData(buf+hw.VA(off), staged[off:off+chunk], chunk); err != nil {
			panic(fmt.Sprintf("mk: ipc copyOut: %v", err))
		}
	}
}

// needsCopy reports whether a payload of n bytes is copied through the
// kernel for this flavor (Zircon copies any payload; fastpath kernels copy
// only what does not fit in registers).
func (k *Kernel) needsCopy(n int) bool {
	if n == 0 {
		return false
	}
	if k.prof.msgCopies > 0 {
		return true
	}
	return n > regMsgBytes
}

// Call performs a synchronous IPC call: send req, block, receive the reply.
// A reply payload is deposited at replyBuf in the caller's address space.
func (e *Env) Call(ep *Endpoint, req Msg, replyBuf hw.VA) (Msg, error) {
	return e.callInternal(ep, req, replyBuf, 0)
}

// CallTimeout is Call with a cycle deadline: if the server has not replied
// within timeout cycles, the call aborts with ErrTimeout (§7's defense
// against servers that never return).
func (e *Env) CallTimeout(ep *Endpoint, req Msg, replyBuf hw.VA, timeout uint64) (Msg, error) {
	return e.callInternal(ep, req, replyBuf, timeout)
}

func (e *Env) callInternal(ep *Endpoint, req Msg, replyBuf hw.VA, timeout uint64) (Msg, error) {
	k, cpu := e.K, e.T.Core
	if !e.P.Caps[ep] {
		return Msg{}, ErrNoCapability
	}
	e.T.Checkpoint()
	// Re-establish this thread's address space: other threads may have run
	// on the core while we were queued (their context switches are what a
	// real kernel would perform when resuming us).
	e.enter()
	k.IPCCalls++
	ep.Calls++
	span := cpu.Trace.Begin(cpu.Clock, "ipc.call", "mk")

	ctx := &callCtx{req: req, client: e.T, clientP: e.P, replyBuf: replyBuf}

	// A register-sized payload is loaded into registers in user mode
	// before the syscall.
	if req.Len > 0 && !k.needsCopy(req.Len) {
		ctx.reqInline = make([]byte, req.Len)
		e.Read(req.Buf, ctx.reqInline, req.Len)
	}

	// Kernel entry.
	k.record(cpu, CatSyscall, func() { cpu.Syscall(); cpu.Swapgs() })
	k.record(cpu, CatCtxSw, func() { k.kptiEnter(cpu) })

	fast := k.prof.hasFastpath && req.Len <= regMsgBytes && !k.needsCopy(req.Len)
	var srv *sim.Thread
	if fast {
		srv = ep.takeWaiter(cpu.ID, false)
		fast = srv != nil
	}

	if fast {
		// seL4-style fastpath: direct switch to the server, no scheduler.
		ctx.fastCall = true
		k.Fastpaths++
		k.record(cpu, CatOther, func() {
			k.touchKernel(cpu, k.prof.fastTextBytes, k.prof.fastDataLines)
			cpu.Tick(k.prof.fastResidual)
		})
		k.record(cpu, CatCtxSw, func() {
			k.switchTo(cpu, srv.Ctx.(*Env).P)
			k.kptiExit(cpu)
		})
		k.record(cpu, CatSyscall, func() { cpu.Swapgs(); cpu.Sysret() })
		k.Eng.Wake(srv, cpu.Clock, ctx)
	} else {
		// Slowpath: scheduler, optional copy, optional IPI.
		k.Slowpaths++
		k.record(cpu, CatOther, func() {
			k.touchKernel(cpu, k.prof.slowTextBytes, k.prof.slowDataLines)
			cpu.Tick(k.prof.slowResidual)
		})
		k.record(cpu, CatSched, func() { cpu.Tick(k.prof.schedCycles) })
		if k.needsCopy(req.Len) {
			if k.Cfg.TempMapping {
				// Temporary mapping: no sender-side copy; snapshot the
				// frames' content (the sender blocks, so they are stable).
				ctx.reqStage = k.rawRead(e.P, req.Buf, req.Len)
			} else {
				k.record(cpu, CatCopy, func() { ctx.reqStage = ep.copyIn(cpu, req.Buf, req.Len) })
			}
		}
		srv = ep.takeWaiter(cpu.ID, true)
		switch {
		case srv != nil && srv.Core.ID != cpu.ID:
			ctx.crossCall = true
			k.record(cpu, CatSched, func() { cpu.Tick(k.prof.crossExtra) })
			k.record(cpu, CatIPI, func() { k.Mach.SendIPI(cpu.ID, srv.Core.ID) })
			k.Eng.Wake(srv, cpu.Clock, ctx)
		case srv != nil:
			k.Eng.Wake(srv, cpu.Clock, ctx)
		default:
			ep.pending = append(ep.pending, ctx)
		}
	}

	if timeout > 0 {
		deadline := cpu.Clock + timeout
		k.Eng.At(deadline, func() {
			if !ctx.done {
				ctx.timedOut = true
				ctx.err = ErrTimeout
				k.Eng.Wake(ctx.client, deadline, ctx)
			}
		})
	}

	// Block until the reply (or timeout) arrives.
	got := e.T.Park().(*callCtx)
	if got != ctx {
		panic("mk: ipc wake context mismatch")
	}

	// Client-side return path.
	if ctx.err != nil {
		// Timed out: the kernel aborts the call; return to user.
		k.record(cpu, CatSyscall, func() { cpu.Swapgs(); cpu.Sysret() })
		cpu.Trace.End(span, cpu.Clock, obs.U("timeout", 1))
		return Msg{}, ctx.err
	}
	if !ctx.fastReply {
		if ctx.crossRep {
			k.record(cpu, CatIPI, func() {
				if err := cpu.Interrupt(); err != nil {
					panic(err)
				}
			})
		} else {
			cpu.Mode = hw.ModeKernel
		}
		k.record(cpu, CatSched, func() { cpu.Tick(k.prof.schedCycles) })
		k.record(cpu, CatCtxSw, func() {
			k.switchTo(cpu, e.P)
			k.kptiExit(cpu)
		})
		if k.needsCopy(ctx.reply.Len) {
			if k.Cfg.TempMapping {
				k.record(cpu, CatCopy, func() {
					win, pages, err := k.tempMap(cpu, ctx.serverP, e.P, ctx.reply.Buf, ctx.reply.Len, ep.winVA)
					if err != nil {
						panic(err)
					}
					k.tempCopy(cpu, win, replyBuf, ctx.repStage)
					k.tempUnmap(cpu, e.P, ep.winVA, pages)
				})
			} else {
				k.record(cpu, CatCopy, func() { ep.copyOut(cpu, replyBuf, ctx.repStage) })
			}
			// The reply has been deposited in the client's address space; the
			// staging buffer is dead and can be recycled.
			k.putStage(ctx.repStage)
			ctx.repStage = nil
		}
		k.record(cpu, CatSyscall, func() { cpu.Swapgs(); cpu.Sysret() })
	} else {
		cpu.Mode = hw.ModeUser
	}
	reply := ctx.reply
	if reply.Len > 0 {
		if ctx.repInline != nil {
			// Register-sized reply: stored from registers in user mode.
			e.Write(replyBuf, ctx.repInline, len(ctx.repInline))
		}
		reply.Buf = replyBuf
	}
	cpu.Trace.End(span, cpu.Clock,
		obs.U("fast", b2u(ctx.fastCall)), obs.U("cross", b2u(ctx.crossCall)))
	return reply, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Serve runs a server loop on the endpoint: park in Recv, run handler,
// reply, repeat (the Call/ReplyWait pattern). It returns when the endpoint
// is closed. The handler's reply Msg.Buf (if any) must point into the
// server's address space.
func (k *Kernel) Serve(env *Env, ep *Endpoint, recvBuf hw.VA, handler func(env *Env, req Msg) Msg) {
	cpu := env.T.Core
	env.T.Ctx = env
	for {
		var ctx *callCtx
		env.T.Checkpoint()
		if len(ep.pending) > 0 {
			ctx = ep.pending[0]
			ep.pending = ep.pending[1:]
		} else {
			if ep.closed {
				return
			}
			v := ep.recvQ.Wait(env.T)
			if v == nil {
				return
			}
			ctx = v.(*callCtx)
		}
		if ctx.timedOut {
			// Client is gone; drop the request. Its staged payload (if any)
			// will never be copied out, so recycle it here.
			k.putStage(ctx.reqStage)
			ctx.reqStage = nil
			continue
		}
		span := cpu.Trace.Begin(cpu.Clock, "ipc.serve", "mk")

		// Server-side receive path.
		if ctx.fastCall {
			// The client's fastpath leg already switched to this address
			// space and returned to user mode: nothing more to charge.
			env.T.Core.Mode = hw.ModeUser
		} else {
			if ctx.crossCall {
				k.record(cpu, CatIPI, func() {
					if err := cpu.Interrupt(); err != nil {
						panic(err)
					}
				})
			} else {
				cpu.Mode = hw.ModeKernel
			}
			k.record(cpu, CatSched, func() { cpu.Tick(k.prof.schedCycles) })
			k.record(cpu, CatCtxSw, func() {
				k.switchTo(cpu, env.P)
				k.kptiEnter(cpu)
			})
			if k.needsCopy(ctx.req.Len) {
				if k.Cfg.TempMapping {
					k.record(cpu, CatCopy, func() {
						win, pages, err := k.tempMap(cpu, ctx.clientP, env.P, ctx.req.Buf, ctx.req.Len, ep.winVA)
						if err != nil {
							panic(err)
						}
						k.tempCopy(cpu, win, recvBuf, ctx.reqStage)
						k.tempUnmap(cpu, env.P, ep.winVA, pages)
					})
				} else {
					k.record(cpu, CatCopy, func() { ep.copyOut(cpu, recvBuf, ctx.reqStage) })
				}
				// The request now lives in the server's receive buffer; the
				// staging buffer is dead and can be recycled.
				k.putStage(ctx.reqStage)
				ctx.reqStage = nil
			}
			k.record(cpu, CatCtxSw, func() { k.kptiExit(cpu) })
			k.record(cpu, CatSyscall, func() { cpu.Swapgs(); cpu.Sysret() })
		}

		req := ctx.req
		if req.Len > 0 {
			if ctx.reqInline != nil {
				// Register payload: store it to the receive buffer.
				env.Write(recvBuf, ctx.reqInline, len(ctx.reqInline))
			}
			req.Buf = recvBuf
		}
		reply := handler(env, req)

		// Re-enter the event queue at the handler's finish time so that
		// earlier-timestamped events (e.g. the client's timeout) order
		// correctly before the reply, then restore our address space in
		// case an interleaved thread switched it.
		env.T.Checkpoint()
		env.enter()
		if ctx.timedOut {
			cpu.Trace.End(span, cpu.Clock, obs.U("timeout", 1))
			continue // timed out while we were handling it; drop the reply
		}
		ctx.reply = reply
		if reply.Len > 0 && !k.needsCopy(reply.Len) {
			// Register-sized reply: loaded into registers server-side.
			ctx.repInline = make([]byte, reply.Len)
			env.Read(reply.Buf, ctx.repInline, reply.Len)
		}
		ctx.serverP = env.P
		ctx.done = true

		// Reply path (ReplyWait: reply and wait combined in one syscall).
		// The reply leg is fast or slow independently of the call leg.
		ctx.crossRep = cpu.ID != ctx.client.Core.ID
		ctx.fastReply = k.prof.hasFastpath && !ctx.crossRep && !k.needsCopy(reply.Len)

		k.record(cpu, CatSyscall, func() { cpu.Syscall(); cpu.Swapgs() })
		k.record(cpu, CatCtxSw, func() { k.kptiEnter(cpu) })
		if ctx.fastReply {
			k.record(cpu, CatOther, func() {
				k.touchKernel(cpu, k.prof.fastTextBytes, k.prof.fastDataLines)
				cpu.Tick(k.prof.fastResidual)
			})
			k.record(cpu, CatCtxSw, func() {
				k.switchTo(cpu, ctx.clientP)
				k.kptiExit(cpu)
			})
			k.record(cpu, CatSyscall, func() { cpu.Swapgs(); cpu.Sysret() })
			k.Eng.Wake(ctx.client, cpu.Clock, ctx)
		} else {
			k.record(cpu, CatOther, func() {
				k.touchKernel(cpu, k.prof.slowTextBytes, k.prof.slowDataLines)
				cpu.Tick(k.prof.slowResidual)
			})
			k.record(cpu, CatSched, func() { cpu.Tick(k.prof.schedCycles) })
			if k.needsCopy(reply.Len) {
				if k.Cfg.TempMapping {
					ctx.repStage = k.rawRead(env.P, reply.Buf, reply.Len)
				} else {
					k.record(cpu, CatCopy, func() { ctx.repStage = ep.copyIn(cpu, reply.Buf, reply.Len) })
				}
			}
			if ctx.crossRep {
				k.record(cpu, CatSched, func() { cpu.Tick(k.prof.crossExtra) })
				k.record(cpu, CatIPI, func() { k.Mach.SendIPI(cpu.ID, ctx.client.Core.ID) })
			}
			k.record(cpu, CatCtxSw, func() { k.kptiExit(cpu) })
			k.record(cpu, CatSyscall, func() { cpu.Swapgs(); cpu.Sysret() })
			k.Eng.Wake(ctx.client, cpu.Clock, ctx)
		}
		cpu.Trace.End(span, cpu.Clock,
			obs.U("fast_reply", b2u(ctx.fastReply)), obs.U("cross", b2u(ctx.crossRep)))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
