package mk

import (
	"fmt"

	"skybridge/internal/hw"
)

// This file implements L4's "temporary mapping" optimization for long IPC
// (paper §8.1: "L4 proposes a technique called temporary mapping, which
// temporarily maps the caller's buffer into the callee's address space and
// avoids one costly message copying. This technique is orthogonal to
// SkyBridge"). With Config.TempMapping enabled, a long message is not
// copied twice through the kernel buffer; instead the kernel maps the
// sender's buffer frames into a per-endpoint window in the receiver's
// address space and the receiver-side kernel copies directly from the
// window — one copy instead of two.

// tempWindowVA is the kernel-chosen receiver-side window base for
// temporarily mapped sender buffers (one window per endpoint).
const tempWindowVA hw.VA = 0x7f00_0000_0000

// costPTEWrite is the kernel cost of installing or tearing down one
// temporary PTE (entry write + bookkeeping).
const costPTEWrite = 40

// tempMap maps the page span [buf, buf+n) of srcProc into dstProc at the
// endpoint's window and returns the window VA of buf plus the page count.
// The kernel charges one PTE write per page; teardown additionally flushes
// the window's TLB entries.
func (k *Kernel) tempMap(cpu *hw.CPU, srcProc, dstProc *Process, buf hw.VA, n int, window hw.VA) (hw.VA, int, error) {
	first := buf.PageBase()
	last := (buf + hw.VA(n) - 1).PageBase()
	pages := int((last-first)/hw.PageSize) + 1
	for i := 0; i < pages; i++ {
		gpa, _, ok := srcProc.PT.Walk(first + hw.VA(i*hw.PageSize))
		if !ok {
			return 0, 0, fmt.Errorf("mk: temp map: sender page %#x unmapped", uint64(first)+uint64(i*hw.PageSize))
		}
		if err := dstProc.PT.Map(window+hw.VA(i*hw.PageSize), gpa.PageBase(), hw.PTEWrite); err != nil {
			return 0, 0, err
		}
		cpu.Tick(costPTEWrite)
	}
	return window + hw.VA(buf.PageOff()), pages, nil
}

// tempUnmap tears the window down.
func (k *Kernel) tempUnmap(cpu *hw.CPU, dstProc *Process, window hw.VA, pages int) {
	for i := 0; i < pages; i++ {
		dstProc.PT.Unmap(window + hw.VA(i*hw.PageSize))
		cpu.Tick(costPTEWrite)
	}
	// The window's stale translations must not survive; flush the tagged
	// entries (INVLPG per page, modeled as a tag flush).
	cpu.DTLB.FlushTag(hw.TLBTag{VPID: cpu.VPID, PCID: dstProc.PCID})
}

// tempCopy performs the single receiver-side copy from the mapped window,
// charging reads of the window and writes of the destination buffer.
func (k *Kernel) tempCopy(cpu *hw.CPU, src hw.VA, dst hw.VA, staged []byte) {
	prevMode := cpu.Mode
	cpu.Mode = hw.ModeKernel
	if err := cpu.ReadData(src, nil, len(staged)); err != nil {
		panic(fmt.Sprintf("mk: temp copy read: %v", err))
	}
	if err := cpu.WriteData(dst, staged, len(staged)); err != nil {
		panic(fmt.Sprintf("mk: temp copy write: %v", err))
	}
	cpu.Mode = prevMode
}
