// Package repro's top-level benchmarks regenerate every table and figure of
// the paper's evaluation, one testing.B benchmark per artifact. The sizes
// here are reduced so `go test -bench=.` completes in minutes; cmd/skybench
// exposes paper-scale knobs.
//
// Benchmarks report simulated quantities through b.ReportMetric:
// sim-cycles/op for latency artifacts, sim-ops/sec for throughput
// artifacts. Wall-clock ns/op measures only the simulator itself.
package main

import (
	"testing"

	"skybridge/internal/bench"
	"skybridge/internal/mk"
)

// BenchmarkTable1 regenerates the processor-structure pollution table
// (Baseline vs Delay vs IPC over 512 KV-store operations).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Table1()
		ipc := r.Rows[2]
		b.ReportMetric(float64(ipc.DTLBMisses), "ipc-dtlb-misses")
		b.ReportMetric(float64(ipc.ICacheMisses), "ipc-icache-misses")
	}
}

// BenchmarkTable2 regenerates the instruction/operation latency table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Table2()
		for _, row := range r.Rows {
			if row.Name == "VMFUNC" {
				b.ReportMetric(float64(row.Cycles), "vmfunc-cycles")
			}
		}
	}
}

// BenchmarkFigure2 regenerates the KV-store latency series (four
// transports x four payload sizes).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure2(128)
		b.ReportMetric(float64(r.Cycles[bench.TransportIPC][0]), "ipc-16B-cycles/op")
	}
}

// BenchmarkFigure7 regenerates the IPC round-trip breakdowns for the three
// kernels plus SkyBridge.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure7()
		for _, row := range r.Rows {
			if row.Name == "seL4-SkyBridge" {
				b.ReportMetric(float64(row.Total), "skybridge-cycles/rt")
			}
			if row.Name == "seL4 single-core" {
				b.ReportMetric(float64(row.Total), "sel4-cycles/rt")
			}
		}
	}
}

// BenchmarkFigure8 regenerates the KV-store series including SkyBridge.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.Figure8(128)
		b.ReportMetric(float64(r.Cycles[bench.TransportSkyBridge][0]), "skybridge-16B-cycles/op")
	}
}

// benchTable4 runs one kernel flavor's Table 4 block.
func benchTable4(b *testing.B, flavor mk.Flavor) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table4(bench.Table4Config{Flavor: flavor, Clients: 2, OpsPerKind: 15, Preload: 60})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Mode == bench.ModeSB {
				b.ReportMetric(row.Insert, "skybridge-insert-ops/s")
			}
			if row.Mode == bench.ModeMT {
				b.ReportMetric(row.Insert, "mt-insert-ops/s")
			}
		}
	}
}

// BenchmarkTable4SeL4 regenerates Table 4's seL4 block.
func BenchmarkTable4SeL4(b *testing.B) { benchTable4(b, mk.SeL4) }

// BenchmarkTable4Fiasco regenerates Table 4's Fiasco.OC block.
func BenchmarkTable4Fiasco(b *testing.B) { benchTable4(b, mk.Fiasco) }

// BenchmarkTable4Zircon regenerates Table 4's Zircon block.
func BenchmarkTable4Zircon(b *testing.B) { benchTable4(b, mk.Zircon) }

// benchYCSB runs one kernel flavor's YCSB-A scalability figure.
func benchYCSB(b *testing.B, flavor mk.Flavor) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure9to11(bench.YCSBConfig{Flavor: flavor, Threads: []int{1, 4}, Records: 200, Ops: 30})
		if err != nil {
			b.Fatal(err)
		}
		series := r.Tput[bench.ModeSB]
		b.ReportMetric(series[0], "skybridge-1t-ops/s")
		b.ReportMetric(r.Tput[bench.ModeST][0], "st-1t-ops/s")
	}
}

// BenchmarkFigure9 regenerates the seL4 YCSB-A figure.
func BenchmarkFigure9(b *testing.B) { benchYCSB(b, mk.SeL4) }

// BenchmarkFigure10 regenerates the Fiasco.OC YCSB-A figure.
func BenchmarkFigure10(b *testing.B) { benchYCSB(b, mk.Fiasco) }

// BenchmarkFigure11 regenerates the Zircon YCSB-A figure.
func BenchmarkFigure11(b *testing.B) { benchYCSB(b, mk.Zircon) }

// BenchmarkTable5 regenerates the virtualization-overhead table.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table5(200, 30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].VMExits), "vm-exits")
		b.ReportMetric(r.Rows[0].Rootkernel/r.Rows[0].Native, "rootkernel/native")
	}
}

// BenchmarkTable6 regenerates the inadvertent-VMFUNC scan (corpus at 1/64
// of the paper's code volume here; cmd/skybench -scale 1 for full size).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table6(64)
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, row := range r.Rows {
			total += row.Inadvertent
		}
		b.ReportMetric(float64(total), "inadvertent-vmfuncs")
	}
}

// BenchmarkEPTCloneShallowVsDeep is DESIGN.md ablation 1.
func BenchmarkEPTCloneShallowVsDeep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationEPTClone()
		b.ReportMetric(r.ValueA, "shallow-pages")
		b.ReportMetric(r.ValueB, "deep-pages")
	}
}

// BenchmarkHugepageVsSmallPageEPT is DESIGN.md ablation 2.
func BenchmarkHugepageVsSmallPageEPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := bench.AblationHugepageEPT()
		b.ReportMetric(rs[0].ValueA, "hugepage-tables")
		b.ReportMetric(rs[0].ValueB, "smallpage-tables")
	}
}

// BenchmarkExitlessVsTrapping is DESIGN.md ablation 3.
func BenchmarkExitlessVsTrapping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationExitless()
		b.ReportMetric(r.ValueB/r.ValueA, "trap-all-slowdown")
	}
}

// BenchmarkKeyCheckVsKernelCheck is DESIGN.md ablation 4.
func BenchmarkKeyCheckVsKernelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationKeyCheck()
		b.ReportMetric(r.ValueA, "user-check-cycles")
		b.ReportMetric(r.ValueB, "kernel-check-cycles")
	}
}

// BenchmarkVPIDvsFlush is DESIGN.md ablation 5.
func BenchmarkVPIDvsFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationVPID()
		b.ReportMetric(r.ValueA, "vpid-cycles")
		b.ReportMetric(r.ValueB, "flush-cycles")
	}
}

// BenchmarkTempMappingVsTwoCopy measures L4's temporary-mapping long-IPC
// optimization (paper §8.1) against the default two-copy transfer.
func BenchmarkTempMappingVsTwoCopy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.AblationTempMapping()
		b.ReportMetric(r.ValueA, "tempmap-cycles/rt")
		b.ReportMetric(r.ValueB, "twocopy-cycles/rt")
	}
}
