package main

import (
	"testing"

	"skybridge/internal/bench"
)

func TestExperimentNamesIncludeScaling(t *testing.T) {
	// -list prints experimentNames; the catalog must expose every
	// selector, including the multicore scaling sweep.
	found := map[string]bool{}
	for _, n := range experimentNames {
		if found[n] {
			t.Errorf("duplicate experiment name %q", n)
		}
		found[n] = true
	}
	for _, want := range []string{"table2", "fig8", "fig9", "scaling", "tenants", "skew"} {
		if !found[want] {
			t.Errorf("experiment %q missing from -list output", want)
		}
	}
}

func TestExperimentDescriptionsNonEmpty(t *testing.T) {
	// -list prints "name  description"; every distinct selector must carry
	// a one-line description.
	for _, u := range bench.ExperimentInfo() {
		if u.Desc == "" {
			t.Errorf("experiment %q has no description", u.Name)
		}
	}
}

func TestSelectExperimentsAll(t *testing.T) {
	sel, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != len(experimentNames) {
		t.Errorf("all selected %d, want %d", len(sel), len(experimentNames))
	}
	for _, n := range experimentNames {
		if !sel[n] {
			t.Errorf("all did not select %q", n)
		}
	}
}

func TestSelectExperimentsList(t *testing.T) {
	sel, err := selectExperiments(" Table2, fig7 ,table2")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || !sel["table2"] || !sel["fig7"] {
		t.Errorf("sel = %v, want {table2, fig7}", sel)
	}
}

func TestSelectExperimentsUnknownRejected(t *testing.T) {
	// An unknown name must error even when mixed with valid ones
	// (previously it was silently ignored).
	if _, err := selectExperiments("table2,bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := selectExperiments("nope"); err == nil {
		t.Error("unknown-only selection accepted")
	}
	if _, err := selectExperiments(""); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := selectExperiments(" , ,"); err == nil {
		t.Error("blank selection accepted")
	}
}

func TestSelectExperimentsAllPlusUnknown(t *testing.T) {
	if _, err := selectExperiments("all,bogus"); err == nil {
		t.Error("'all,bogus' accepted; unknown names must always be rejected")
	}
}

func TestParseBenchOut(t *testing.T) {
	outs := map[string]string{}
	for _, v := range []string{"host=a.json", "Scaling=b.json", "async=c.json", "db=d.json", "tenants=e.json", "skew=f.json"} {
		if err := parseBenchOut(outs, v); err != nil {
			t.Fatalf("parseBenchOut(%q): %v", v, err)
		}
	}
	if outs["host"] != "a.json" || outs["scaling"] != "b.json" || outs["async"] != "c.json" || outs["db"] != "d.json" || outs["tenants"] != "e.json" || outs["skew"] != "f.json" {
		t.Errorf("outs = %v", outs)
	}
	for _, bad := range []string{"host=", "host", "=x.json", "fig7=x.json", "async=dup.json", "hostbench=x.json"} {
		if err := parseBenchOut(outs, bad); err == nil {
			t.Errorf("parseBenchOut(%q) accepted; want error", bad)
		}
	}
}
