// Command skybench regenerates the tables and figures of the SkyBridge
// paper's evaluation (EuroSys'19, §6) on the simulated substrate.
//
// Usage:
//
//	skybench -run all
//	skybench -run table1,table2,fig7
//	skybench -run fig9 -records 10000 -ops 200
//	skybench -run table2 -trace trace.json -metrics metrics.json
//
// Experiments: table1 table2 table4 table5 table6 fig2 fig7 fig8 fig9
// fig10 fig11 ablations. Paper-scale knobs: -records, -ops, -kvops,
// -clients, -scale.
//
// -trace writes a Chrome trace-event JSON (open in Perfetto / chrome://
// tracing; 1 timestamp unit = 1 simulated cycle, one track per simulated
// core). -metrics writes every experiment's machine-readable records plus
// per-op latency histograms.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"skybridge/internal/bench"
	"skybridge/internal/mk"
	"skybridge/internal/obs"
)

// experimentNames is the authoritative list of experiment selectors.
var experimentNames = []string{
	"table1", "table2", "table4", "table5", "table6",
	"fig2", "fig7", "fig8", "fig9", "fig10", "fig11",
	"ablations",
}

// selectExperiments parses the -run list into a selection set. Unknown
// names are an error (previously they were silently ignored when mixed
// with valid ones). "all" expands to every experiment.
func selectExperiments(runList string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, n := range experimentNames {
		known[n] = true
	}
	sel := map[string]bool{}
	var unknown []string
	for _, raw := range strings.Split(runList, ",") {
		name := strings.TrimSpace(strings.ToLower(raw))
		if name == "" {
			continue
		}
		if name == "all" {
			for _, n := range experimentNames {
				sel[n] = true
			}
			continue
		}
		if !known[name] {
			unknown = append(unknown, name)
			continue
		}
		sel[name] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment(s) %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(experimentNames, " "))
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("no experiments selected from %q (known: %s)",
			runList, strings.Join(experimentNames, " "))
	}
	return sel, nil
}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiments (or 'all')")
		records = flag.Int("records", 1000, "YCSB records per client (paper: 10000)")
		ops     = flag.Int("ops", 60, "YCSB operations per client thread")
		kvops   = flag.Int("kvops", 512, "KV-store operations per configuration")
		clients = flag.Int("clients", 4, "SQLite clients (Table 4)")
		opsKind = flag.Int("opskind", 40, "SQLite ops per kind per client (Table 4)")
		preload = flag.Int("preload", 200, "SQLite preloaded rows per client (Table 4)")
		scale   = flag.Int("scale", 8, "Table 6 corpus scale divisor (1 = paper scale)")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON to this file")
		metricsOut = flag.String("metrics", "", "write machine-readable experiment records (JSON) to this file")
	)
	flag.Parse()

	sel, err := selectExperiments(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		flag.Usage()
		os.Exit(2)
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	s := bench.NewSession(tracer)

	if sel["table2"] {
		fmt.Println(s.Table2().Render())
	}
	if sel["fig7"] {
		fmt.Println(s.Figure7().Render())
	}
	if sel["table1"] {
		fmt.Println(s.Table1().Render())
	}
	if sel["fig2"] {
		fmt.Println(s.Figure2(*kvops).Render())
	}
	if sel["fig8"] {
		fmt.Println(s.Figure8(*kvops).Render())
	}
	if sel["table4"] {
		for _, fl := range []mk.Flavor{mk.SeL4, mk.Fiasco, mk.Zircon} {
			r, err := s.Table4(bench.Table4Config{
				Flavor: fl, Clients: *clients, OpsPerKind: *opsKind, Preload: *preload,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Println(r.Render())
		}
	}
	figFor := map[string]mk.Flavor{"fig9": mk.SeL4, "fig10": mk.Fiasco, "fig11": mk.Zircon}
	for _, name := range []string{"fig9", "fig10", "fig11"} {
		if !sel[name] {
			continue
		}
		r, err := s.Figure9to11(bench.YCSBConfig{
			Flavor: figFor[name], Records: *records, Ops: *ops,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
	if sel["table5"] {
		r, err := s.Table5(*records, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
	if sel["table6"] {
		r, err := s.Table6(*scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
	}
	if sel["ablations"] {
		fmt.Println(bench.RenderAblations(s.Ablations()))
	}

	if *traceOut != "" {
		if err := writeFile(*traceOut, tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
		if d := tracer.TotalDropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "skybench: trace buffers dropped %d events (raise obs.DefaultEventCap)\n", d)
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, s.WriteMetrics); err != nil {
			fatal(err)
		}
	}
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skybench:", err)
	os.Exit(1)
}
