// Command skybench regenerates the tables and figures of the SkyBridge
// paper's evaluation (EuroSys'19, §6) on the simulated substrate.
//
// Usage:
//
//	skybench -run all
//	skybench -run table1,table2,fig7
//	skybench -run fig9 -records 10000 -ops 200
//	skybench -run table2 -trace trace.json -metrics metrics.json
//
// Experiments: table1 table2 table4 table5 table6 fig2 fig7 fig8 fig9
// fig10 fig11 ablations scaling async dbscale tenants skew (-list prints
// them with one-line descriptions). Paper-scale knobs: -records, -ops,
// -kvops, -clients, -scale, -tenants.
//
// -benchout <kind>=<path> runs a standalone benchmark and writes its JSON
// document: host (suite wall-clock timings), scaling (multicore sweep),
// async (ring queue-depth sweep), db (SQLite/FS lock-and-fast-path
// sweep), tenants (multi-tenant frontend sweep), skew (adaptive
// placement under skew). Repeatable.
//
// Host-side accelerators: -hostcache on|off gates the walk-memo and
// decode caches, -superblock on|off gates superblock direct-threaded
// execution and block-granular cache charging, and -j N runs experiment
// units and their independent cells on N workers. All three change only
// host wall-clock: simulated results, stdout, metrics, trace, and report
// are byte-identical for every combination.
//
// -trace writes a Chrome trace-event JSON (open in Perfetto / chrome://
// tracing; 1 timestamp unit = 1 simulated cycle, one track per simulated
// core), including flow arrows that stitch each call's causal chain
// across cores. -metrics writes every experiment's machine-readable
// records plus per-op latency histograms. -report prints the per-call
// phase-breakdown table (p50/p90/p99/p99.9 per phase, flight-recorder
// tail dumps) and writes it as JSON; both -report outputs are
// byte-deterministic for any -j.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"skybridge/internal/bench"
	"skybridge/internal/hw"
	"skybridge/internal/isa"
	"skybridge/internal/obs"
)

// experimentNames is the authoritative list of experiment selectors, in
// catalog order.
var experimentNames = bench.ExperimentNames()

// selectExperiments parses the -run list into a selection set. Unknown
// names are an error (previously they were silently ignored when mixed
// with valid ones). "all" expands to every experiment.
func selectExperiments(runList string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, n := range experimentNames {
		known[n] = true
	}
	sel := map[string]bool{}
	var unknown []string
	for _, raw := range strings.Split(runList, ",") {
		name := strings.TrimSpace(strings.ToLower(raw))
		if name == "" {
			continue
		}
		if name == "all" {
			for _, n := range experimentNames {
				sel[n] = true
			}
			continue
		}
		if !known[name] {
			unknown = append(unknown, name)
			continue
		}
		sel[name] = true
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment(s) %s (known: %s)",
			strings.Join(unknown, ", "), strings.Join(experimentNames, " "))
	}
	if len(sel) == 0 {
		return nil, fmt.Errorf("no experiments selected from %q (known: %s)",
			runList, strings.Join(experimentNames, " "))
	}
	return sel, nil
}

func main() {
	var (
		list    = flag.Bool("list", false, "print the experiment names, one per line, and exit")
		runList = flag.String("run", "all", "comma-separated experiments (or 'all')")
		records = flag.Int("records", 1000, "YCSB records per client (paper: 10000)")
		ops     = flag.Int("ops", 60, "YCSB operations per client thread")
		kvops   = flag.Int("kvops", 512, "KV-store operations per configuration")
		clients = flag.Int("clients", 4, "SQLite clients (Table 4)")
		opsKind = flag.Int("opskind", 40, "SQLite ops per kind per client (Table 4)")
		preload = flag.Int("preload", 200, "SQLite preloaded rows per client (Table 4)")
		scale   = flag.Int("scale", 8, "Table 6 corpus scale divisor (1 = paper scale)")
		tenants = flag.Int("tenants", 1024, "multi-tenant sweep population ceiling (clips the 64/256/1024 ladder)")

		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON to this file")
		metricsOut = flag.String("metrics", "", "write machine-readable experiment records (JSON) to this file")
		reportOut  = flag.String("report", "", "write the per-call phase-breakdown report (JSON) to this file and print its table")

		jobs       = flag.Int("j", 1, "run experiments (and their independent cells) on N parallel workers (output stays in declaration order, byte-identical for any N)")
		hostCache  = flag.String("hostcache", "on", "host-side walk-memo and decode caches: on|off (simulated results are identical either way)")
		superblock = flag.String("superblock", "on", "superblock direct-threaded execution and block-granular cache charging: on|off (simulated results are identical either way)")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (post-run) to this file")
	)
	benchOuts := map[string]string{}
	flag.Func("benchout", "run a standalone benchmark and write its JSON: <kind>=<path>, kind one of host|scaling|async|db|tenants|skew (repeatable)",
		func(v string) error { return parseBenchOut(benchOuts, v) })
	flag.Parse()

	if *list {
		for _, u := range bench.ExperimentInfo() {
			fmt.Printf("%-10s %s\n", u.Name, u.Desc)
		}
		return
	}

	switch *hostCache {
	case "on":
		hw.SetHostFastPaths(true)
		isa.SetDecodeCache(true)
	case "off":
		hw.SetHostFastPaths(false)
		isa.SetDecodeCache(false)
	default:
		fmt.Fprintf(os.Stderr, "skybench: -hostcache must be on or off, got %q\n", *hostCache)
		os.Exit(2)
	}
	switch *superblock {
	case "on":
		isa.SetSuperblock(true)
		hw.SetBlockCharge(true)
	case "off":
		isa.SetSuperblock(false)
		hw.SetBlockCharge(false)
	default:
		fmt.Fprintf(os.Stderr, "skybench: -superblock must be on or off, got %q\n", *superblock)
		os.Exit(2)
	}
	bench.SetJobs(*jobs)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	sel, err := selectExperiments(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skybench:", err)
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{
		Records: *records, Ops: *ops, KVOps: *kvops,
		Clients: *clients, OpsPerKind: *opsKind, Preload: *preload,
		Scale: *scale, Tenants: *tenants,
	}

	if len(benchOuts) > 0 {
		if *reportOut != "" || *traceOut != "" || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "skybench: note: -report/-trace/-metrics apply to experiment runs (-run), not -benchout; ignoring them")
		}
		if err := runBenchOuts(benchOuts, sel, opts, *jobs); err != nil {
			fatal(err)
		}
		return
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	s := bench.NewSession(tracer)
	if err := bench.RunAll(sel, opts, *jobs, s, os.Stdout); err != nil {
		fatal(err)
	}

	if *reportOut != "" {
		rep := s.BuildReport()
		fmt.Print(rep.Render())
		if err := writeFile(*reportOut, rep.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, tracer.WriteChromeTrace); err != nil {
			fatal(err)
		}
	}
	if d := s.TotalDropped(); d > 0 {
		// Loud and last: a lossy trace silently invalidates flow chains
		// and the report's tail dumps.
		fmt.Fprintf(os.Stderr, "skybench: WARNING: trace buffers dropped %d events — flow chains and -report dumps are incomplete (raise obs.DefaultEventCap)\n", d)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, s.WriteMetrics); err != nil {
			fatal(err)
		}
	}
}

// parseBenchOut parses one -benchout value (<kind>=<path>) into outs,
// rejecting unknown kinds and duplicate keys.
func parseBenchOut(outs map[string]string, v string) error {
	kind, path, ok := strings.Cut(v, "=")
	if !ok || path == "" {
		return fmt.Errorf("want <kind>=<path>, got %q", v)
	}
	kind = strings.ToLower(strings.TrimSpace(kind))
	switch kind {
	case "host", "scaling", "async", "db", "tenants", "skew":
	default:
		return fmt.Errorf("unknown benchmark kind %q (host, scaling, async, db, tenants, skew)", kind)
	}
	if prev, dup := outs[kind]; dup {
		return fmt.Errorf("duplicate -benchout kind %q (already writing %s)", kind, prev)
	}
	outs[kind] = path
	return nil
}

// runBenchOuts runs the requested standalone benchmarks in a fixed order
// (host, scaling, async, db, tenants, skew) and writes each result where
// -benchout asked.
func runBenchOuts(outs map[string]string, sel map[string]bool, opts bench.Options, jobs int) error {
	if path, ok := outs["host"]; ok {
		if err := runHostBench(path, sel, opts, jobs); err != nil {
			return err
		}
	}
	if path, ok := outs["scaling"]; ok {
		r, err := bench.Scaling(bench.ScalingConfig{Records: opts.Records, TotalOps: opts.KVOps})
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if err := writeFile(path, func(w io.Writer) error { return bench.WriteScalingBench(w, r) }); err != nil {
			return err
		}
	}
	if path, ok := outs["async"]; ok {
		r, err := bench.Async(bench.AsyncConfig{Records: opts.Records, TotalOps: opts.KVOps})
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if err := writeFile(path, func(w io.Writer) error { return bench.WriteAsyncBench(w, r) }); err != nil {
			return err
		}
	}
	if path, ok := outs["db"]; ok {
		r, err := bench.DBScale(bench.DBScaleConfig{Records: opts.Records / 4, OpsPerClient: opts.Ops})
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if err := writeFile(path, func(w io.Writer) error { return bench.WriteDBBench(w, r) }); err != nil {
			return err
		}
	}
	if path, ok := outs["tenants"]; ok {
		r, err := bench.Tenants(bench.TenantsConfig{MaxTenants: opts.Tenants})
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if err := writeFile(path, func(w io.Writer) error { return bench.WriteTenantsBench(w, r) }); err != nil {
			return err
		}
	}
	if path, ok := outs["skew"]; ok {
		r, err := bench.Skew(bench.SkewConfig{TotalOps: 8 * opts.KVOps})
		if err != nil {
			return err
		}
		fmt.Print(r.Render())
		if err := writeFile(path, func(w io.Writer) error { return bench.WriteSkewBench(w, r) }); err != nil {
			return err
		}
	}
	return nil
}

// runHostBench times the selected suite four ways — serial with every host
// accelerator off, serial with the walk-memo/decode caches on (the PR 2
// configuration), serial with superblock execution on top, and parallel
// with everything on — plus the superblock dispatch microbenchmark, and
// writes the result as BENCH_host.json. Simulated results are identical in
// every cell (that is the whole point of the host fast paths); only host
// wall-clock differs.
func runHostBench(path string, sel map[string]bool, opts bench.Options, jobs int) error {
	if jobs <= 1 {
		jobs = runtime.NumCPU()
	}
	res := bench.HostBenchResult{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Jobs:       float64(jobs),
	}
	for name := range sel {
		res.Experiments = append(res.Experiments, name)
	}
	sort.Strings(res.Experiments)

	// Snapshot the flag-derived settings so later -benchout kinds run
	// under the configuration the user asked for.
	prevFast := hw.SetHostFastPaths(true)
	prevDec := isa.SetDecodeCache(true)
	prevSB := isa.SetSuperblock(true)
	prevBC := hw.SetBlockCharge(true)
	prevJobs := bench.SetJobs(1)
	defer func() {
		hw.SetHostFastPaths(prevFast)
		isa.SetDecodeCache(prevDec)
		isa.SetSuperblock(prevSB)
		hw.SetBlockCharge(prevBC)
		bench.SetJobs(prevJobs)
	}()

	run := func(cachesOn, superblockOn bool, j int) (float64, error) {
		hw.SetHostFastPaths(cachesOn)
		isa.SetDecodeCache(cachesOn)
		isa.SetSuperblock(superblockOn)
		hw.SetBlockCharge(superblockOn)
		bench.SetJobs(j)
		start := time.Now()
		err := bench.RunAll(sel, opts, j, bench.NewSession(nil), io.Discard)
		return time.Since(start).Seconds(), err
	}
	var err error
	if res.SerialCachesOffSec, err = run(false, false, 1); err != nil {
		return err
	}
	if res.SerialCachesOnSec, err = run(true, false, 1); err != nil {
		return err
	}
	if res.SerialSuperblockOnSec, err = run(true, true, 1); err != nil {
		return err
	}
	if res.ParallelSec, err = run(true, true, jobs); err != nil {
		return err
	}
	res.Micro = bench.RunSuperblockMicro(0)
	return writeFile(path, func(w io.Writer) error { return bench.WriteHostBench(w, res) })
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skybench:", err)
	os.Exit(1)
}
