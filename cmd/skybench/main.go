// Command skybench regenerates the tables and figures of the SkyBridge
// paper's evaluation (EuroSys'19, §6) on the simulated substrate.
//
// Usage:
//
//	skybench -run all
//	skybench -run table1,table2,fig7
//	skybench -run fig9 -records 10000 -ops 200
//
// Experiments: table1 table2 table4 table5 table6 fig2 fig7 fig8 fig9
// fig10 fig11 ablations. Paper-scale knobs: -records, -ops, -kvops,
// -clients, -scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"skybridge/internal/bench"
	"skybridge/internal/mk"
)

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated experiments (or 'all')")
		records = flag.Int("records", 1000, "YCSB records per client (paper: 10000)")
		ops     = flag.Int("ops", 60, "YCSB operations per client thread")
		kvops   = flag.Int("kvops", 512, "KV-store operations per configuration")
		clients = flag.Int("clients", 4, "SQLite clients (Table 4)")
		opsKind = flag.Int("opskind", 40, "SQLite ops per kind per client (Table 4)")
		preload = flag.Int("preload", 200, "SQLite preloaded rows per client (Table 4)")
		scale   = flag.Int("scale", 8, "Table 6 corpus scale divisor (1 = paper scale)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(strings.ToLower(name))] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }
	ran := 0

	if sel("table2") {
		fmt.Println(bench.Table2().Render())
		ran++
	}
	if sel("fig7") {
		fmt.Println(bench.Figure7().Render())
		ran++
	}
	if sel("table1") {
		fmt.Println(bench.Table1().Render())
		ran++
	}
	if sel("fig2") {
		fmt.Println(bench.Figure2(*kvops).Render())
		ran++
	}
	if sel("fig8") {
		fmt.Println(bench.Figure8(*kvops).Render())
		ran++
	}
	if sel("table4") {
		for _, fl := range []mk.Flavor{mk.SeL4, mk.Fiasco, mk.Zircon} {
			r, err := bench.Table4(bench.Table4Config{
				Flavor: fl, Clients: *clients, OpsPerKind: *opsKind, Preload: *preload,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Println(r.Render())
		}
		ran++
	}
	figFor := map[string]mk.Flavor{"fig9": mk.SeL4, "fig10": mk.Fiasco, "fig11": mk.Zircon}
	for _, name := range []string{"fig9", "fig10", "fig11"} {
		if !sel(name) {
			continue
		}
		r, err := bench.Figure9to11(bench.YCSBConfig{
			Flavor: figFor[name], Records: *records, Ops: *ops,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		ran++
	}
	if sel("table5") {
		r, err := bench.Table5(*records, *ops)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		ran++
	}
	if sel("table6") {
		r, err := bench.Table6(*scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Render())
		ran++
	}
	if sel("ablations") {
		fmt.Println(bench.RenderAblations(bench.Ablations()))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "skybench: no experiment matched %q\n", *runList)
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skybench:", err)
	os.Exit(1)
}
