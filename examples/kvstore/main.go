// KV-store pipeline (the paper's Figure 1): client -> encryption server ->
// key-value store, run over all five transport configurations of
// Figures 2/8, printing the per-operation latency of each.
package main

import (
	"fmt"

	"skybridge/internal/bench"
)

func main() {
	const ops = 256
	fmt.Println("KV pipeline: 50% insert / 50% query, per-op latency in simulated cycles")
	fmt.Printf("%-14s", "transport")
	for _, size := range bench.KVSizes {
		fmt.Printf(" %10d-B", size)
	}
	fmt.Println()
	for _, tr := range []bench.Transport{
		bench.TransportBaseline, bench.TransportDelay,
		bench.TransportIPC, bench.TransportIPCCross, bench.TransportSkyBridge,
	} {
		fmt.Printf("%-14s", tr)
		for _, size := range bench.KVSizes {
			s := bench.RunKV(tr, size, ops)
			fmt.Printf(" %12d", s.AvgCycles)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Figure 8): Baseline < SkyBridge < Delay < IPC < IPC-CrossCore,")
	fmt.Println("with the gaps shrinking as the payload grows.")
}
