// Rewriter demo: build a binary containing both a deliberate VMFUNC and
// the inadvertent encodings of Table 3, then scan and rewrite it the way
// SkyBridge's Subkernel does at registration time (paper §5).
package main

import (
	"fmt"
	"log"

	"skybridge/internal/isa"
	"skybridge/internal/rewrite"
)

func main() {
	var a isa.Asm
	a.MovRI32(isa.RAX, 0)
	a.Vmfunc()                                                                        // the faking attack: a literal VMFUNC
	a.AluRI(isa.ADD, isa.RBX, 0xD4010F)                                               // VMFUNC bytes inside an immediate
	a.Imul3M(isa.RCX, isa.Mem{Base: isa.RDI, Index: isa.NoReg, Scale: 1}, 0x2222D401) // ModRM=0F
	a.Lea(isa.RBX, isa.Mem{Base: isa.RDI, Index: isa.RCX, Scale: 1, Disp: 0xD401})    // SIB=0F
	for i := 0; i < 8; i++ {
		a.Nop()
	}
	a.Hlt()
	code := a.Bytes()

	fmt.Println("before rewriting:")
	disasm(code)
	occs, err := rewrite.Scan(code)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range occs {
		fmt.Printf("  !! VMFUNC pattern at +%#x (case %s) in: %s\n", o.Off, o.Case, o.Inst)
	}

	rw := rewrite.New(0x40_0000)
	res, err := rw.Rewrite(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrewrote %d occurrences: %v\n", len(res.Fixed), res.CaseCounts())
	fmt.Println("\nafter rewriting (code page):")
	disasm(res.Code)
	fmt.Println("\nrewriting page at 0x1000:")
	disasm(res.RewritePage)

	if n := len(rewrite.FindPattern(res.Code)) + len(rewrite.FindPattern(res.RewritePage)); n != 0 {
		log.Fatalf("pattern survives (%d)!", n)
	}
	fmt.Println("\nno VMFUNC byte pattern remains outside the trampoline.")
}

func disasm(code []byte) {
	off := 0
	for off < len(code) {
		in, err := isa.Decode(code[off:])
		if err != nil {
			fmt.Printf("  +%04x  <%x>\n", off, code[off:])
			return
		}
		fmt.Printf("  +%04x  %-28s % x\n", off, in.String(), in.Raw)
		off += in.Len
	}
}
