// Quickstart: boot a simulated machine, start the Rootkernel, register a
// SkyBridge server, and make direct server calls from a client — the
// Figure 4 programming model end to end.
package main

import (
	"fmt"
	"log"

	"skybridge/internal/core"
	"skybridge/internal/hv"
	"skybridge/internal/hw"
	"skybridge/internal/mk"
	"skybridge/internal/sim"
)

func main() {
	// A 4-core Skylake-like machine running a seL4-flavored Subkernel.
	eng := sim.NewEngine(hw.NewMachine(hw.MachineConfig{Cores: 4, MemBytes: 4 << 30}))
	kernel := mk.New(mk.Config{Flavor: mk.SeL4}, eng)

	// Self-virtualization: the Subkernel boots the Rootkernel, which
	// downgrades it to VMX non-root mode (paper §4.1).
	rootk, err := hv.Boot(kernel, hv.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sky := core.New(kernel, rootk)

	server := kernel.NewProcess("adder")
	client := kernel.NewProcess("client")

	// The server registers a handler; the returned ID is its global EPTP
	// index (register_server in Figure 4).
	var serverID int
	server.Spawn("register", kernel.Mach.Cores[0], func(env *mk.Env) {
		serverID, err = sky.RegisterServer(env, 8, 0x40_0100,
			func(env *mk.Env, req core.Request) core.Response {
				return core.Response{Regs: [4]uint64{req.Regs[0] + req.Regs[1]}}
			})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("server registered: id=%d\n", serverID)
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}

	// The client binds to the server (register_client_to_server) and makes
	// direct calls: user-mode VMFUNC, no kernel on the path.
	client.Spawn("main", kernel.Mach.Cores[0], func(env *mk.Env) {
		if _, err := sky.RegisterClient(env, serverID); err != nil {
			log.Fatal(err)
		}
		// Warm up, then measure. Registration itself took a few hypercalls
		// (VM exits); steady-state calls must take none.
		for i := 0; i < 32; i++ {
			sky.DirectCall(env, serverID, core.Request{Regs: [4]uint64{1, 2}})
		}
		kernel.Mach.ResetVMExitCounts()
		start := env.Now()
		const rounds = 100
		var last core.Response
		for i := 0; i < rounds; i++ {
			last, err = sky.DirectCall(env, serverID, core.Request{Regs: [4]uint64{uint64(i), 100}})
			if err != nil {
				log.Fatal(err)
			}
		}
		cycles := (env.Now() - start) / rounds
		fmt.Printf("direct_server_call(99, 100) = %d\n", last.Regs[0])
		fmt.Printf("round trip: %d cycles (paper: ~396)\n", cycles)
		fmt.Printf("VM exits during calls: %d\n", kernel.Mach.TotalVMExits())
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}
}
