// SQLite-over-SkyBridge: the paper's three-tier application (§6.5) as a
// runnable program. A client process opens a relational database stored on
// the xv6fs-like file-system server, which talks to the RAM block-device
// server — all connected by SkyBridge direct calls.
package main

import (
	"fmt"
	"log"

	"skybridge/internal/bench"
	"skybridge/internal/db"
	"skybridge/internal/fs"
	"skybridge/internal/mk"
)

func main() {
	w := bench.MustWorld(bench.WorldConfig{Flavor: mk.SeL4, Cores: 4, MemBytes: 8 << 30, SkyBridge: true})
	stack, err := bench.BuildDBStack(w, bench.ModeSB)
	if err != nil {
		log.Fatal(err)
	}

	client := w.K.NewProcess("app")
	client.Spawn("main", w.K.Mach.Cores[0], func(env *mk.Env) {
		conn, err := stack.FSConn(env, client)
		if err != nil {
			log.Fatal(err)
		}
		d, err := db.Open(env, client, &fs.Client{Conn: conn}, "demo.db")
		if err != nil {
			log.Fatal(err)
		}
		exec := func(sql string) *db.Rows {
			r, err := d.Exec(env, sql)
			if err != nil {
				log.Fatalf("%s: %v", sql, err)
			}
			return r
		}
		exec("CREATE TABLE accounts (id INTEGER PRIMARY KEY, owner TEXT, balance INTEGER)")
		exec("INSERT INTO accounts VALUES (1, 'alice', 1200)")
		exec("INSERT INTO accounts VALUES (2, 'bob', 300)")
		exec("INSERT INTO accounts VALUES (3, 'carol', 7700)")

		// A transaction moving money, then queries.
		exec("BEGIN")
		exec("UPDATE accounts SET balance = 1100 WHERE id = 1")
		exec("UPDATE accounts SET balance = 400 WHERE id = 2")
		exec("COMMIT")

		rows := exec("SELECT owner, balance FROM accounts")
		fmt.Println("accounts:")
		for _, r := range rows.Rows {
			fmt.Printf("  %-8s %6d\n", r[0].Text, r[1].Int)
		}

		start := env.Now()
		const n = 50
		for i := 0; i < n; i++ {
			exec(fmt.Sprintf("INSERT INTO accounts VALUES (%d, 'user%d', %d)", 10+i, i, i*13))
		}
		perOp := (env.Now() - start) / n
		fmt.Printf("\n%d SQL inserts through DB -> FS -> blockdev: %d cycles/op (%.0f ops/s at 4 GHz)\n",
			n, perOp, bench.OpsPerSec(1, perOp))
		fmt.Printf("SkyBridge direct calls made: %d, kernel IPCs: %d, VM exits: %d\n",
			w.SB.DirectCalls, w.K.IPCCalls, w.K.Mach.TotalVMExits())
		hits, misses, commits := stack.FS.Cache()
		fmt.Printf("FS buffer cache: %d hits / %d misses, %d log commits\n", hits, misses, commits)
	})
	if err := w.Eng.Run(); err != nil {
		log.Fatal(err)
	}
}
