module skybridge

go 1.22
